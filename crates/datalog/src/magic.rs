//! The magic-sets program rewrite: goal-directed bottom-up evaluation.
//!
//! Given a query `reach('a', x)` over a stratified program, the rewrite of
//! Bancilhon et al. produces a new program whose fixpoint derives **only**
//! the tuples demanded by the query, while remaining evaluable by the same
//! semi-naive bottom-up engine:
//!
//! * every reachable adorned predicate `p^a` with at least one bound
//!   position gets an **answer predicate** `p_a` and a **magic predicate**
//!   `m_p_a` holding the bound-argument combinations actually demanded;
//! * every adorned rule is **guarded**: `p_a(t̄) :- m_p_a(t̄|_b), body'`,
//!   where `body'` renames intensional subgoals to their adorned answer
//!   predicates;
//! * **magic rules** push demand sideways: for each intensional subgoal,
//!   the bound arguments it will be called with are derivable from the
//!   head's magic predicate plus the preceding positive body literals;
//! * a **base-import rule** `p_a(x̄) :- m_p_a(x̄|_b), p(x̄)` lets stored
//!   facts of an intensional relation (the engine treats intensional
//!   relations with stored tuples as extra base facts) flow into the
//!   demanded slice;
//! * the query itself becomes one **seed fact** `m_q_a(c̄)`.
//!
//! The rewrite refuses ([`DatalogError::GoalDirected`]) when a negated
//! intensional subgoal is reachable or the rewritten program fails to
//! stratify; callers fall back to full materialization.  Negated
//! *extensional* literals are kept verbatim — they are filters, never
//! demand sources — so the output is always negation-stratified when the
//! input slice is.

use std::collections::{BTreeMap, BTreeSet};

use kbt_data::{Const, RelId};
use kbt_logic::{Term, Var};

use crate::adorn::{adorn_program, AdornedPred, Adornment};
use crate::ast::{DlAtom, Literal, Program, Rule};
use crate::error::DatalogError;
use crate::stratify::stratify;
use crate::Result;

/// Rendering metadata for one predicate invented by the rewrite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MagicName {
    /// The original relation the predicate derives from.
    pub base: RelId,
    /// The adornment string (`"bf"`, …).
    pub adornment: String,
    /// `true` for the magic (demand) predicate, `false` for the answer
    /// predicate.
    pub magic: bool,
}

/// The output of [`magic_rewrite`]: a rewritten program plus everything the
/// caller needs to seed, evaluate, and read it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MagicPlan {
    /// The rewritten, stratification-checked program.
    pub program: Program,
    /// The relation holding the query's answers in the rewritten fixpoint
    /// (filter it by the query's bound constants to obtain the answer set).
    pub answer: RelId,
    /// Seed facts to add to the extensional database before evaluating:
    /// the query's magic seed plus any constant-only demand facts.
    pub seeds: Vec<(RelId, Vec<Const>)>,
    /// Names for the invented predicates, for rendering plans and profiles.
    pub names: Vec<(RelId, MagicName)>,
    /// The query's binding pattern.
    pub pattern: Adornment,
}

impl MagicPlan {
    /// Renders an invented predicate through `base_namer`, falling back to
    /// `base_namer` directly for original relations: `reach_bf` for the
    /// answer predicate, `m_reach_bf` for the magic predicate.
    pub fn render_relation(&self, rel: RelId, base_namer: &dyn Fn(RelId) -> String) -> String {
        match self.names.iter().find(|(id, _)| *id == rel) {
            Some((_, name)) => {
                let base = base_namer(name.base);
                if name.magic {
                    format!("m_{}_{}", base, name.adornment)
                } else {
                    format!("{}_{}", base, name.adornment)
                }
            }
            None => base_namer(rel),
        }
    }
}

/// Rewrites `program` around the query `rel(terms)` using magic sets.
///
/// `first_free` is the first relation index guaranteed unused by the caller
/// (typically the vocabulary's relation count); invented predicates are
/// allocated from `max(first_free, max index in program + 1)` upward.
///
/// With an all-free pattern the result is simply the reachable slice of the
/// original program (no magic predicates, `answer = rel`, no seeds).
pub fn magic_rewrite(
    program: &Program,
    rel: RelId,
    terms: &[Term],
    first_free: u32,
) -> Result<MagicPlan> {
    let pattern = Adornment::from_terms(terms);
    let adorned = adorn_program(program, rel, &pattern)?;

    // Allocate answer/magic predicate ids for every bound adorned predicate.
    let mut next = first_free;
    for r in program.rules() {
        next = next.max(r.head.rel.index() + 1);
        for l in &r.body {
            next = next.max(l.atom.rel.index() + 1);
        }
    }
    let mut ids: BTreeMap<AdornedPred, (RelId, RelId)> = BTreeMap::new();
    let mut names = Vec::new();
    for pred in &adorned.preds {
        if pred.adornment.is_all_free() {
            continue;
        }
        let ans = RelId::new(next);
        let magic = RelId::new(next + 1);
        next += 2;
        ids.insert(pred.clone(), (ans, magic));
        names.push((
            ans,
            MagicName {
                base: pred.rel,
                adornment: pred.adornment.to_string(),
                magic: false,
            },
        ));
        names.push((
            magic,
            MagicName {
                base: pred.rel,
                adornment: pred.adornment.to_string(),
                magic: true,
            },
        ));
    }

    // Renames a positive intensional subgoal to its answer predicate.
    let rename = |atom: &DlAtom, call: &Option<Adornment>| -> DlAtom {
        match call {
            Some(a) if !a.is_all_free() => {
                let pred = AdornedPred {
                    rel: atom.rel,
                    adornment: a.clone(),
                };
                DlAtom::new(ids[&pred].0, atom.terms.clone())
            }
            _ => atom.clone(),
        }
    };
    // The magic guard for a bound adorned head/subgoal: the atom's terms at
    // the adornment's bound positions.
    let magic_atom = |atom: &DlAtom, adornment: &Adornment, magic_rel: RelId| -> DlAtom {
        let bound_terms: Vec<Term> = atom
            .terms
            .iter()
            .enumerate()
            .filter(|(i, _)| adornment.is_bound(*i))
            .map(|(_, t)| *t)
            .collect();
        DlAtom::new(magic_rel, bound_terms)
    };

    let mut rules: Vec<Rule> = Vec::new();
    let mut seeds: Vec<(RelId, Vec<Const>)> = Vec::new();
    let mut seen_magic: BTreeSet<Rule> = BTreeSet::new();

    // Base-import rules: stored facts of each bound adorned predicate flow
    // into its demanded slice.
    for pred in &adorned.preds {
        if let Some((ans, magic)) = ids.get(pred) {
            let arity = pred.adornment.len();
            let fresh: Vec<Term> = (0..arity).map(|i| Term::Var(Var::new(i as u32))).collect();
            let head = DlAtom::new(*ans, fresh.clone());
            let guard = magic_atom(&head, &pred.adornment, *magic);
            rules.push(Rule::new(
                head,
                vec![
                    Literal::positive(guard),
                    Literal::positive(DlAtom::new(pred.rel, fresh)),
                ],
            ));
        }
    }

    for ar in &adorned.rules {
        // Guarded adorned rule.
        let head_ids = ids.get(&ar.head);
        let head = match head_ids {
            Some((ans, _)) => DlAtom::new(*ans, ar.rule.head.terms.clone()),
            None => ar.rule.head.clone(),
        };
        let mut body = Vec::with_capacity(ar.body.len() + 1);
        if let Some((_, magic)) = head_ids {
            body.push(Literal::positive(magic_atom(
                &ar.rule.head,
                &ar.head.adornment,
                *magic,
            )));
        }
        for lit in &ar.body {
            let atom = rename(&lit.literal.atom, &lit.call);
            body.push(Literal {
                atom,
                positive: lit.literal.positive,
            });
        }
        rules.push(Rule::new(head, body));

        // Magic (demand) rules: one per bound intensional subgoal, seeded
        // from the head's magic guard plus the preceding positive literals.
        for (j, lit) in ar.body.iter().enumerate() {
            let Some(call) = &lit.call else { continue };
            if call.is_all_free() {
                continue;
            }
            let callee = AdornedPred {
                rel: lit.literal.atom.rel,
                adornment: call.clone(),
            };
            let m_head = magic_atom(&lit.literal.atom, call, ids[&callee].1);
            let mut m_body = Vec::new();
            if let Some((_, magic)) = head_ids {
                m_body.push(Literal::positive(magic_atom(
                    &ar.rule.head,
                    &ar.head.adornment,
                    *magic,
                )));
            }
            for prev in &ar.body[..j] {
                if prev.literal.positive {
                    m_body.push(Literal::positive(rename(&prev.literal.atom, &prev.call)));
                }
            }
            if m_body.is_empty() {
                // No guard and no prefix: the demand is a ground fact.
                let consts: Vec<Const> = m_head.terms.iter().filter_map(|t| t.as_const()).collect();
                debug_assert_eq!(consts.len(), m_head.arity());
                seeds.push((m_head.rel, consts));
                continue;
            }
            // Skip the trivial self-demand m(x̄) :- m(x̄).
            if m_body.len() == 1 && m_body[0].atom == m_head {
                continue;
            }
            let m_rule = Rule::new(m_head, m_body);
            if seen_magic.insert(m_rule.clone()) {
                rules.push(m_rule);
            }
        }
    }

    // Seed the query's own demand.
    let answer = match ids.get(&adorned.query) {
        Some((ans, magic)) => {
            let consts: Vec<Const> = terms.iter().filter_map(|t| t.as_const()).collect();
            seeds.push((*magic, consts));
            *ans
        }
        None => rel,
    };

    let program = Program::new(rules)?;
    stratify(&program).map_err(|e| match e {
        DatalogError::NotStratifiable { relation } => DatalogError::GoalDirected {
            reason: format!("rewritten program does not stratify (via {relation})"),
        },
        other => other,
    })?;

    Ok(MagicPlan {
        program,
        answer,
        seeds,
        names,
        pattern,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::semi_naive_eval;
    use kbt_data::{Database, Relation};
    use kbt_logic::builder::{cst, var};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn tc_program() -> Program {
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let path = |a, b| DlAtom::new(r(2), vec![a, b]);
        Program::new(vec![
            Rule::new(
                path(var(1), var(2)),
                vec![Literal::positive(edge(var(1), var(2)))],
            ),
            Rule::new(
                path(var(1), var(3)),
                vec![
                    Literal::positive(path(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
        ])
        .unwrap()
    }

    fn chain_edb(n: u32) -> Database {
        let mut edges = Relation::empty(2);
        for i in 0..n {
            edges.insert_row(&[Const::new(i), Const::new(i + 1)]);
        }
        let mut db = Database::new();
        db.set_relation(r(1), edges);
        db
    }

    /// Evaluates a magic plan over `edb` and reads the filtered answer.
    fn run_plan(plan: &MagicPlan, edb: &Database, terms: &[Term]) -> Relation {
        let mut db = edb.clone();
        for (rel, consts) in &plan.seeds {
            db.ensure_relation(*rel, consts.len()).unwrap();
            db.insert_fact(*rel, consts.clone().into()).unwrap();
        }
        let (fix, _) = semi_naive_eval(&plan.program, &db).unwrap();
        let arity = terms.len();
        let full = fix
            .relation(plan.answer)
            .cloned()
            .unwrap_or_else(|| Relation::empty(arity));
        let mut out = Relation::empty(arity);
        for row in full.iter() {
            let ok = terms
                .iter()
                .zip(row.iter())
                .all(|(t, c)| t.as_const().map(|q| q == *c).unwrap_or(true));
            if ok {
                out.insert_row(row);
            }
        }
        out
    }

    /// The materializing oracle: full fixpoint, then filter.
    fn oracle(program: &Program, edb: &Database, rel: RelId, terms: &[Term]) -> Relation {
        let (fix, _) = semi_naive_eval(program, edb).unwrap();
        let arity = terms.len();
        let full = fix
            .relation(rel)
            .cloned()
            .unwrap_or_else(|| Relation::empty(arity));
        let mut out = Relation::empty(arity);
        for row in full.iter() {
            let ok = terms
                .iter()
                .zip(row.iter())
                .all(|(t, c)| t.as_const().map(|q| q == *c).unwrap_or(true));
            if ok {
                out.insert_row(row);
            }
        }
        out
    }

    #[test]
    fn tc_point_query_matches_oracle_and_prunes() {
        let prog = tc_program();
        let edb = chain_edb(50);
        let terms = vec![cst(0), var(1)];
        let plan = magic_rewrite(&prog, r(2), &terms, 100).unwrap();
        assert_eq!(plan.pattern.to_string(), "bf");
        assert_eq!(plan.seeds.len(), 1);
        let got = run_plan(&plan, &edb, &terms);
        let want = oracle(&prog, &edb, r(2), &terms);
        assert_eq!(got, want);
        assert_eq!(got.len(), 50);

        // Demand-driven: querying the *last* node derives one suffix, not
        // the full quadratic closure.
        let terms = vec![cst(49), var(1)];
        let plan = magic_rewrite(&prog, r(2), &terms, 100).unwrap();
        let mut db = edb.clone();
        for (rel, consts) in &plan.seeds {
            db.ensure_relation(*rel, consts.len()).unwrap();
            db.insert_fact(*rel, consts.clone().into()).unwrap();
        }
        let (fix, _) = semi_naive_eval(&plan.program, &db).unwrap();
        let derived: usize = fix
            .relation(plan.answer)
            .map(|rl| rl.len())
            .unwrap_or_default();
        assert_eq!(derived, 1, "only the demanded suffix is derived");
    }

    #[test]
    fn bound_second_argument_works_too() {
        let prog = tc_program();
        let edb = chain_edb(30);
        let terms = vec![var(1), cst(30)];
        let plan = magic_rewrite(&prog, r(2), &terms, 100).unwrap();
        assert_eq!(plan.pattern.to_string(), "fb");
        let got = run_plan(&plan, &edb, &terms);
        let want = oracle(&prog, &edb, r(2), &terms);
        assert_eq!(got, want);
        assert_eq!(got.len(), 30);
    }

    #[test]
    fn fully_bound_membership_query() {
        let prog = tc_program();
        let edb = chain_edb(20);
        let terms = vec![cst(3), cst(17)];
        let plan = magic_rewrite(&prog, r(2), &terms, 100).unwrap();
        let got = run_plan(&plan, &edb, &terms);
        assert_eq!(got.len(), 1);
        let terms = vec![cst(17), cst(3)];
        let plan = magic_rewrite(&prog, r(2), &terms, 100).unwrap();
        let got = run_plan(&plan, &edb, &terms);
        assert_eq!(got.len(), 0);
    }

    #[test]
    fn all_free_pattern_is_the_program_slice() {
        let prog = tc_program();
        let terms = vec![var(1), var(2)];
        let plan = magic_rewrite(&prog, r(2), &terms, 100).unwrap();
        assert_eq!(plan.answer, r(2));
        assert!(plan.seeds.is_empty());
        assert_eq!(plan.program, prog);
    }

    #[test]
    fn stored_idb_facts_are_imported_under_the_guard() {
        // path has stored tuples besides its rules.
        let prog = tc_program();
        let mut edb = chain_edb(5);
        edb.ensure_relation(r(2), 2).unwrap();
        edb.insert_fact(r(2), vec![Const::new(100), Const::new(101)].into())
            .unwrap();
        edb.insert_fact(r(2), vec![Const::new(0), Const::new(100)].into())
            .unwrap();
        let terms = vec![cst(0), var(1)];
        let plan = magic_rewrite(&prog, r(2), &terms, 200).unwrap();
        let got = run_plan(&plan, &edb, &terms);
        let want = oracle(&prog, &edb, r(2), &terms);
        assert_eq!(got, want);
        // 0→1..5 via edges plus the stored 0→100 (the stored 100→101 path
        // fact cannot extend it: the recursive rule appends *edges*).
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn extensional_query_rel_becomes_a_guarded_import() {
        let prog = tc_program();
        let edb = chain_edb(5);
        let terms = vec![cst(2), var(1)];
        let plan = magic_rewrite(&prog, r(1), &terms, 100).unwrap();
        let got = run_plan(&plan, &edb, &terms);
        assert_eq!(got.len(), 1);
        assert_eq!(got.row(0), &[Const::new(2), Const::new(3)]);
    }

    #[test]
    fn invented_predicates_render_stably() {
        let prog = tc_program();
        let terms = vec![cst(0), var(1)];
        let plan = magic_rewrite(&prog, r(2), &terms, 100).unwrap();
        let namer = |rel: RelId| {
            if rel == r(1) {
                "edge".to_string()
            } else if rel == r(2) {
                "path".to_string()
            } else {
                format!("R{}", rel.index())
            }
        };
        assert_eq!(plan.render_relation(plan.answer, &namer), "path_bf");
        let magic = plan.seeds[0].0;
        assert_eq!(plan.render_relation(magic, &namer), "m_path_bf");
        assert_eq!(plan.render_relation(r(1), &namer), "edge");
    }

    #[test]
    fn negation_on_idb_refuses_with_typed_error() {
        let e = |a| DlAtom::new(r(1), vec![a]);
        let p = |a| DlAtom::new(r(2), vec![a]);
        let q = |a| DlAtom::new(r(3), vec![a]);
        let prog = Program::new(vec![
            Rule::new(p(var(1)), vec![Literal::positive(e(var(1)))]),
            Rule::new(
                q(var(1)),
                vec![Literal::positive(e(var(1))), Literal::negative(p(var(1)))],
            ),
        ])
        .unwrap();
        let err = magic_rewrite(&prog, r(3), &[cst(1)], 100).unwrap_err();
        assert!(matches!(err, DatalogError::GoalDirected { .. }));
        assert!(err.to_string().contains("goal-directed"));
    }

    #[test]
    fn negation_on_edb_is_preserved() {
        // q(x) :- e(x), ~blocked(x).  blocked is extensional.
        let e = |a| DlAtom::new(r(1), vec![a]);
        let blocked = |a| DlAtom::new(r(4), vec![a]);
        let q = |a| DlAtom::new(r(3), vec![a]);
        let prog = Program::new(vec![Rule::new(
            q(var(1)),
            vec![
                Literal::positive(e(var(1))),
                Literal::negative(blocked(var(1))),
            ],
        )])
        .unwrap();
        let mut edb = Database::new();
        let mut es = Relation::empty(1);
        es.insert_row(&[Const::new(1)]);
        es.insert_row(&[Const::new(2)]);
        edb.set_relation(r(1), es);
        let mut bs = Relation::empty(1);
        bs.insert_row(&[Const::new(2)]);
        edb.set_relation(r(4), bs);
        let terms = vec![cst(1)];
        let plan = magic_rewrite(&prog, r(3), &terms, 100).unwrap();
        let got = run_plan(&plan, &edb, &terms);
        let want = oracle(&prog, &edb, r(3), &terms);
        assert_eq!(got, want);
        assert_eq!(got.len(), 1);
        let terms = vec![cst(2)];
        let plan = magic_rewrite(&prog, r(3), &terms, 100).unwrap();
        let got = run_plan(&plan, &edb, &terms);
        assert_eq!(got.len(), 0, "blocked node is filtered by the negation");
    }
}
