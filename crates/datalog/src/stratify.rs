//! Stratification of Datalog programs with negation.
//!
//! The paper (Section 2.1) notes that the iterative fixpoint of a stratified
//! program can be obtained in the transformation language by sequentially
//! updating the database with the strata of the program in their hierarchical
//! order.  This module computes exactly that stratification.

use std::collections::BTreeMap;

use kbt_data::RelId;

use crate::ast::{Program, Rule};
use crate::error::DatalogError;
use crate::Result;

/// Splits a program into strata `P_1, …, P_k` such that every negated body
/// relation of a rule in `P_i` is defined in some `P_j` with `j < i` (or is
/// extensional), and every positive IDB dependency stays within `P_1 ∪ … ∪
/// P_i`.  Fails if the program recurses through negation.
pub fn stratify(program: &Program) -> Result<Vec<Program>> {
    let idb = program.idb_relations();
    let mut stratum: BTreeMap<RelId, usize> = idb.iter().map(|&r| (r, 0)).collect();
    let max_rounds = idb.len().max(1) * idb.len().max(1) + 1;

    let mut changed = true;
    let mut rounds = 0;
    while changed {
        changed = false;
        rounds += 1;
        if rounds > max_rounds {
            // a stratum number exceeded the number of IDB relations: cycle
            // through negation.
            let culprit = stratum
                .iter()
                .max_by_key(|(_, &s)| s)
                .map(|(r, _)| r.to_string())
                .unwrap_or_else(|| "<unknown>".to_string());
            return Err(DatalogError::NotStratifiable { relation: culprit });
        }
        for rule in program.rules() {
            let head_stratum = *stratum.get(&rule.head.rel).expect("head is IDB");
            for lit in &rule.body {
                let Some(&body_stratum) = stratum.get(&lit.atom.rel) else {
                    continue; // extensional relation: stratum 0 conceptually
                };
                let required = if lit.positive {
                    body_stratum
                } else {
                    body_stratum + 1
                };
                if head_stratum < required {
                    stratum.insert(rule.head.rel, required);
                    changed = true;
                }
            }
        }
        // sanity bound: strata can never legitimately exceed |IDB|
        if stratum.values().any(|&s| s > idb.len()) {
            let culprit = stratum
                .iter()
                .max_by_key(|(_, &s)| s)
                .map(|(r, _)| r.to_string())
                .unwrap_or_else(|| "<unknown>".to_string());
            return Err(DatalogError::NotStratifiable { relation: culprit });
        }
    }

    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<Rule>> = vec![Vec::new(); max_stratum + 1];
    for rule in program.rules() {
        let s = *stratum.get(&rule.head.rel).expect("head is IDB");
        strata[s].push(rule.clone());
    }
    strata
        .into_iter()
        .filter(|rules| !rules.is_empty())
        .map(Program::new)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DlAtom, Literal, Rule};
    use kbt_logic::builder::var;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn positive_programs_form_a_single_stratum() {
        let p = Program::new(vec![
            Rule::new(
                DlAtom::new(r(2), vec![var(1), var(2)]),
                vec![Literal::positive(DlAtom::new(r(1), vec![var(1), var(2)]))],
            ),
            Rule::new(
                DlAtom::new(r(2), vec![var(1), var(3)]),
                vec![
                    Literal::positive(DlAtom::new(r(2), vec![var(1), var(2)])),
                    Literal::positive(DlAtom::new(r(1), vec![var(2), var(3)])),
                ],
            ),
        ])
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata.len(), 1);
        assert_eq!(strata[0].len(), 2);
    }

    #[test]
    fn negation_of_a_derived_relation_forces_a_later_stratum() {
        // reach(x,y) :- edge(x,y).
        // reach(x,z) :- reach(x,y), edge(y,z).
        // unreachable(x,y) :- node(x), node(y), ~reach(x,y).
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let reach = |a, b| DlAtom::new(r(2), vec![a, b]);
        let node = |a| DlAtom::new(r(3), vec![a]);
        let unreach = |a, b| DlAtom::new(r(4), vec![a, b]);
        let p = Program::new(vec![
            Rule::new(
                reach(var(1), var(2)),
                vec![Literal::positive(edge(var(1), var(2)))],
            ),
            Rule::new(
                reach(var(1), var(3)),
                vec![
                    Literal::positive(reach(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
            Rule::new(
                unreach(var(1), var(2)),
                vec![
                    Literal::positive(node(var(1))),
                    Literal::positive(node(var(2))),
                    Literal::negative(reach(var(1), var(2))),
                ],
            ),
        ])
        .unwrap();
        let strata = stratify(&p).unwrap();
        assert_eq!(strata.len(), 2);
        assert!(strata[0].idb_relations().contains(&r(2)));
        assert!(strata[1].idb_relations().contains(&r(4)));
    }

    #[test]
    fn recursion_through_negation_is_rejected() {
        // p(x) :- q(x), ~p(x)  — not stratifiable.
        let p_atom = |a| DlAtom::new(r(1), vec![a]);
        let q_atom = |a| DlAtom::new(r(2), vec![a]);
        let prog = Program::new(vec![Rule::new(
            p_atom(var(1)),
            vec![
                Literal::positive(q_atom(var(1))),
                Literal::negative(p_atom(var(1))),
            ],
        )])
        .unwrap();
        assert!(matches!(
            stratify(&prog),
            Err(DatalogError::NotStratifiable { .. })
        ));
    }
}
