//! Error types for the Datalog substrate.

use std::fmt;

/// Errors produced while building or evaluating Datalog programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule is not range-restricted.
    UnsafeRule {
        /// Display form of the offending rule.
        rule: String,
    },
    /// The program uses negation through recursion and cannot be stratified.
    NotStratifiable {
        /// Display form of a relation on the offending cycle.
        relation: String,
    },
    /// The sentence handed to [`crate::program_from_sentence`] is not a
    /// conjunction of function-free Horn clauses.
    NotHorn,
    /// An error bubbled up from the relational substrate.
    Data(kbt_data::DataError),
    /// A limit of the evaluation engine was exceeded (e.g. a relation wider
    /// than a binding mask can express).
    Engine {
        /// Human-readable description of the limit.
        message: String,
    },
    /// The goal-directed (magic-set) rewrite does not cover this program
    /// shape; callers fall back to full materialization.
    GoalDirected {
        /// Why the rewrite refused.
        reason: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::UnsafeRule { rule } => {
                write!(f, "rule is not range-restricted: {rule}")
            }
            DatalogError::NotStratifiable { relation } => write!(
                f,
                "program recurses through negation (e.g. via {relation}) and cannot be stratified"
            ),
            DatalogError::NotHorn => {
                write!(
                    f,
                    "sentence is not a conjunction of function-free Horn clauses"
                )
            }
            DatalogError::Data(e) => write!(f, "{e}"),
            DatalogError::Engine { message } => write!(f, "engine limit: {message}"),
            DatalogError::GoalDirected { reason } => {
                write!(f, "goal-directed rewrite unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<kbt_data::DataError> for DatalogError {
    fn from(e: kbt_data::DataError) -> Self {
        DatalogError::Data(e)
    }
}

impl From<kbt_engine::EngineError> for DatalogError {
    fn from(e: kbt_engine::EngineError) -> Self {
        match e {
            kbt_engine::EngineError::UnsafeRule { rule } => DatalogError::UnsafeRule { rule },
            kbt_engine::EngineError::Data(e) => DatalogError::Data(e),
            other => DatalogError::Engine {
                message: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DatalogError::UnsafeRule {
            rule: "R2(x1) :- R1(x2).".into(),
        };
        assert!(e.to_string().contains("range-restricted"));
        assert!(DatalogError::NotHorn.to_string().contains("Horn"));
    }
}
