//! # kbt-obs — metrics, spans, and structured logs for the kbt workspace
//!
//! A std-only observability layer: a [`Registry`] of named [`Counter`]s,
//! [`Gauge`]s and fixed-bucket log-scale [`Histogram`]s (lock-free
//! `AtomicU64` storage, mergeable snapshots), a drop-timed [`Span`] API,
//! and pluggable structured-log [`LogSink`]s (key=value text or JSON).
//!
//! ## Scopes
//!
//! Library crates (engine, par) record into the process-wide
//! [`Registry::global`].  The service layer gives each `Service` its own
//! `Registry::new()` so concurrent instances never share state, and
//! merges both snapshots when serving the `METRICS` wire command.
//!
//! ## Cost model
//!
//! * Counter/gauge update: one relaxed `fetch_add` — always on, because
//!   `STATS`-style bookkeeping rides on them.
//! * Histogram record: three relaxed `fetch_add`s.
//! * Span with timing disabled ([`Registry::set_enabled`]): one relaxed
//!   load, no clock read, nothing recorded.
//! * Span with timing enabled: two clock reads plus one histogram record;
//!   a sink lock is only taken for spans crossing the slow threshold.
//!
//! Nothing here feeds back into evaluation: enabling or disabling
//! observability cannot perturb fixpoints or `EngineStats` (the engine's
//! deterministic counters), which stay byte-identical at every thread
//! width either way.
//!
//! ## Exposition
//!
//! [`RegistrySnapshot::render`] produces Prometheus-style text: a
//! `# TYPE` line per family, `name value` samples with integer values,
//! and histograms expanded into cumulative `_bucket{le="2^i-1"}` /
//! `_sum` / `_count` samples.  See the grammar on
//! [`RegistrySnapshot::render`].

mod histogram;
mod registry;
mod sink;
mod span;

pub use histogram::{bucket_index, bucket_upper_bound, HistogramCell, HistogramSnapshot, BUCKETS};
pub use registry::{
    Counter, Gauge, Histogram, MetricKind, MetricSnapshot, Registry, RegistrySnapshot,
};
pub use sink::{format_record, LogFormat, LogSink, MemorySink, Record, StderrSink};
pub use span::Span;
