//! The metric registry: named counters, gauges and histograms, plus the
//! per-registry switches (enabled flag, slow-span threshold, log sink).
//!
//! A [`Registry`] is a cheaply clonable handle (`Arc` inside).  Two
//! scopes are used across the workspace:
//!
//! * [`Registry::global`] — one per process; library crates (engine, par)
//!   register here because they have no natural owner.
//! * `Registry::new()` — per-instance; the service layer gives every
//!   `Service` its own registry so concurrent services (tests!) never
//!   share counters.
//!
//! Registration is get-or-create by name and idempotent: asking twice for
//! the same name returns handles onto the same storage.  Handles are
//! lock-free on the hot path; the registry's internal map is only locked
//! at registration and snapshot time.
//!
//! The **enabled** flag gates *timing* (span clock reads) only.  Counters
//! and gauges always record: they back `STATS`-style bookkeeping whose
//! truth must not depend on whether latency profiling is switched on.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{bucket_upper_bound, HistogramCell, HistogramSnapshot};
use crate::sink::{LogSink, Record};

/// One scalar metric on its own cache line.  Counters and gauges are
/// small sequential heap allocations; without the alignment two hot
/// cells — one incremented by the commit writer, one by snapshot
/// readers — can share a 64-byte line, and the resulting false sharing
/// measured ~1.5× on the MVCC snapshot read path under commit churn.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct ScalarCell(AtomicU64);

impl std::ops::Deref for ScalarCell {
    type Target = AtomicU64;

    fn deref(&self) -> &AtomicU64 {
        &self.0
    }
}

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<ScalarCell>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value.  Only for mirroring an external monotonic
    /// total (e.g. syncing a commit counter from the writer's stats);
    /// callers must preserve monotonicity themselves.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up-and-down instantaneous value.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<ScalarCell>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Saturating decrement (never wraps below zero).
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A handle onto one histogram series.  Recording is always allowed;
/// [`Histogram::span`] (which must read the clock) is gated on the owning
/// registry's enabled flag.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub(crate) cell: Arc<HistogramCell>,
    pub(crate) name: Arc<str>,
    pub(crate) registry: Arc<RegistryInner>,
}

impl Histogram {
    /// Records one raw sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.cell.record(value);
    }

    /// The full series name this handle records into.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current snapshot of just this series.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.snapshot()
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<ScalarCell>),
    Gauge(Arc<ScalarCell>),
    Histogram(Arc<HistogramCell>),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// The kind of a registered series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn exposition_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
pub(crate) struct RegistryInner {
    pub(crate) enabled: AtomicBool,
    pub(crate) slow_ns: AtomicU64,
    pub(crate) has_sink: AtomicBool,
    pub(crate) sink: Mutex<Option<Arc<dyn LogSink>>>,
    metrics: Mutex<BTreeMap<String, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

impl std::fmt::Debug for dyn LogSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LogSink")
    }
}

/// A named-metric registry.  Clone freely: clones share storage.
#[derive(Clone, Debug)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, empty registry with timing **enabled** and no sink.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(RegistryInner {
                enabled: AtomicBool::new(true),
                slow_ns: AtomicU64::new(0),
                has_sink: AtomicBool::new(false),
                sink: Mutex::new(None),
                metrics: Mutex::new(BTreeMap::new()),
                help: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The process-wide registry used by library crates.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Switches span timing on or off.  Off means [`Histogram::span`]
    /// costs one relaxed load and never touches the clock.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether span timing is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Spans at least this many nanoseconds long are also emitted to the
    /// sink as structured records; `0` (the default) disables emission.
    pub fn set_slow_span_ns(&self, ns: u64) {
        self.inner.slow_ns.store(ns, Ordering::Relaxed);
    }

    /// Installs (or removes) the structured-log sink.
    pub fn set_sink(&self, sink: Option<Arc<dyn LogSink>>) {
        let mut slot = self.inner.sink.lock().unwrap();
        self.inner.has_sink.store(sink.is_some(), Ordering::Relaxed);
        *slot = sink;
    }

    /// Emits an event record to the sink, if one is installed.
    pub fn event(&self, name: &str, fields: &[(&'static str, String)]) {
        if !self.inner.has_sink.load(Ordering::Relaxed) {
            return;
        }
        let sink = self.inner.sink.lock().unwrap().clone();
        if let Some(sink) = sink {
            sink.emit(&Record {
                name,
                elapsed_ns: None,
                fields,
            });
        }
    }

    /// Attaches a one-line help text to a metric family, rendered as a
    /// `# HELP` line in the text exposition.  Keyed by the **base** name
    /// (labels stripped), so one call covers every series of a labelled
    /// family.  Idempotent; a later call overwrites the text.
    pub fn describe(&self, name: &str, help: &str) {
        self.inner
            .help
            .lock()
            .unwrap()
            .insert(name.to_string(), help.to_string());
    }

    /// Gets or registers a counter.  Panics if `name` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.inner.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(ScalarCell::default())));
        match metric {
            Metric::Counter(cell) => Counter(Arc::clone(cell)),
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Gets or registers a gauge.  Panics on kind mismatch.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.inner.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(ScalarCell::default())));
        match metric {
            Metric::Gauge(cell) => Gauge(Arc::clone(cell)),
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Gets or registers a histogram.  Panics on kind mismatch.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.inner.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCell::new())));
        match metric {
            Metric::Histogram(cell) => Histogram {
                cell: Arc::clone(cell),
                name: Arc::from(name),
                registry: Arc::clone(&self.inner),
            },
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Gets or registers a histogram series with one static label, e.g.
    /// `histogram_labeled("kbt_net_command_ns", "verb", "query")` records
    /// into the series `kbt_net_command_ns{verb="query"}`.
    pub fn histogram_labeled(&self, base: &str, key: &str, value: &str) -> Histogram {
        self.histogram(&format!("{base}{{{key}=\"{value}\"}}"))
    }

    /// Freezes every series into a [`RegistrySnapshot`].
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.inner.metrics.lock().unwrap();
        let series = metrics
            .iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.load(Ordering::Relaxed)),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), snap)
            })
            .collect();
        let help = self.inner.help.lock().unwrap().clone();
        RegistrySnapshot { series, help }
    }
}

/// One frozen series.  The histogram payload is boxed: a snapshot map
/// holds many more counters than histograms, and the 520-byte bucket
/// array would otherwise size every entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricSnapshot {
    Counter(u64),
    Gauge(u64),
    Histogram(Box<HistogramSnapshot>),
}

impl MetricSnapshot {
    fn kind(&self) -> MetricKind {
        match self {
            MetricSnapshot::Counter(_) => MetricKind::Counter,
            MetricSnapshot::Gauge(_) => MetricKind::Gauge,
            MetricSnapshot::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A frozen registry: every series by full name, mergeable and renderable
/// as Prometheus-style text exposition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    series: BTreeMap<String, MetricSnapshot>,
    /// Help texts by base name, rendered as `# HELP` lines.
    help: BTreeMap<String, String>,
}

impl RegistrySnapshot {
    /// The frozen series, by full name.
    pub fn series(&self) -> &BTreeMap<String, MetricSnapshot> {
        &self.series
    }

    /// The counter/gauge value of a series, when it is one.
    pub fn value(&self, name: &str) -> Option<u64> {
        match self.series.get(name)? {
            MetricSnapshot::Counter(v) | MetricSnapshot::Gauge(v) => Some(*v),
            MetricSnapshot::Histogram(_) => None,
        }
    }

    /// The histogram snapshot of a series, when it is one.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.series.get(name)? {
            MetricSnapshot::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Merges another snapshot in: same-name counters and gauges add,
    /// histograms merge element-wise.  Addition makes the operation
    /// associative and commutative, so sharded snapshots combine in any
    /// order.  A same-name kind mismatch keeps `self`'s series (it cannot
    /// occur between registries built from this crate's catalogues).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, help) in &other.help {
            self.help
                .entry(name.clone())
                .or_insert_with(|| help.clone());
        }
        for (name, theirs) in &other.series {
            match self.series.get_mut(name) {
                None => {
                    self.series.insert(name.clone(), theirs.clone());
                }
                Some(ours) if ours.kind() != theirs.kind() => {}
                Some(MetricSnapshot::Counter(v)) => {
                    if let MetricSnapshot::Counter(o) = theirs {
                        *v = v.wrapping_add(*o);
                    }
                }
                Some(MetricSnapshot::Gauge(v)) => {
                    if let MetricSnapshot::Gauge(o) = theirs {
                        *v = v.wrapping_add(*o);
                    }
                }
                Some(MetricSnapshot::Histogram(h)) => {
                    if let MetricSnapshot::Histogram(o) = theirs {
                        h.merge(o);
                    }
                }
            }
        }
    }

    /// Renders Prometheus-style text exposition:
    ///
    /// ```text
    /// exposition := family*
    /// family     := help? "# TYPE " base-name " " kind "\n" sample*
    /// help       := "# HELP " base-name " " text "\n"
    /// sample     := series-name " " integer "\n"
    /// ```
    ///
    /// The `# HELP` line appears when the family was described via
    /// [`Registry::describe`], immediately before its `# TYPE` line.
    ///
    /// Histograms expand into cumulative `<base>_bucket{le="…"}` samples
    /// (bounds are exact `2^i - 1` integers, nanoseconds for `_ns`
    /// series), a final `le="+Inf"` bucket, and `<base>_sum` /
    /// `<base>_count` samples.  Values are plain integers throughout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_base: Option<String> = None;
        for (name, snap) in &self.series {
            // "base{label}" → ("base", "{label}"); "base" → ("base", "").
            let (base, labels) = match name.find('{') {
                Some(i) => name.split_at(i),
                None => (name.as_str(), ""),
            };
            if last_base.as_deref() != Some(base) {
                if let Some(help) = self.help.get(base) {
                    out.push_str("# HELP ");
                    out.push_str(base);
                    out.push(' ');
                    out.push_str(help);
                    out.push('\n');
                }
                out.push_str("# TYPE ");
                out.push_str(base);
                out.push(' ');
                out.push_str(snap.kind().exposition_name());
                out.push('\n');
                last_base = Some(base.to_string());
            }
            match snap {
                MetricSnapshot::Counter(v) | MetricSnapshot::Gauge(v) => {
                    out.push_str(name);
                    out.push(' ');
                    out.push_str(&v.to_string());
                    out.push('\n');
                }
                MetricSnapshot::Histogram(h) => {
                    // Inner labels of the series, "" or `verb="query"`.
                    let inner = labels
                        .strip_prefix('{')
                        .and_then(|l| l.strip_suffix('}'))
                        .unwrap_or("");
                    let bucket_labels = |le: &str| -> String {
                        if inner.is_empty() {
                            format!("{{le=\"{le}\"}}")
                        } else {
                            format!("{{{inner},le=\"{le}\"}}")
                        }
                    };
                    let mut cumulative = 0u64;
                    let top = h.max_bucket().map_or(0, |m| m.min(62));
                    for (i, &b) in h.buckets.iter().enumerate().take(top + 1) {
                        cumulative += b;
                        out.push_str(base);
                        out.push_str("_bucket");
                        out.push_str(&bucket_labels(&bucket_upper_bound(i).to_string()));
                        out.push(' ');
                        out.push_str(&cumulative.to_string());
                        out.push('\n');
                    }
                    out.push_str(base);
                    out.push_str("_bucket");
                    out.push_str(&bucket_labels("+Inf"));
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                    out.push_str(base);
                    out.push_str("_sum");
                    out.push_str(labels);
                    out.push(' ');
                    out.push_str(&h.sum.to_string());
                    out.push('\n');
                    out.push_str(base);
                    out.push_str("_count");
                    out.push_str(labels);
                    out.push(' ');
                    out.push_str(&h.count.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{LogFormat, MemorySink};

    #[test]
    fn registration_is_idempotent_and_shares_storage() {
        let r = Registry::new();
        let a = r.counter("kbt_test_total");
        let b = r.counter("kbt_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().value("kbt_test_total"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("kbt_test_total");
        r.gauge("kbt_test_total");
    }

    #[test]
    fn gauges_saturate_at_zero() {
        let r = Registry::new();
        let g = r.gauge("kbt_test_active");
        g.add(2);
        g.sub(5);
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn snapshot_merge_adds_and_is_associative() {
        let mk = |c: u64, g: u64, h: &[u64]| {
            let r = Registry::new();
            r.counter("c").add(c);
            r.gauge("g").add(g);
            let hist = r.histogram("h");
            for &v in h {
                hist.record(v);
            }
            r.snapshot()
        };
        let a = mk(1, 10, &[1, 2]);
        let b = mk(2, 20, &[100]);
        let c = mk(3, 30, &[]);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left.value("c"), Some(6));
        assert_eq!(left.value("g"), Some(60));
        assert_eq!(left.histogram("h").unwrap().count, 3);
    }

    #[test]
    fn exposition_renders_types_buckets_and_labels() {
        let r = Registry::new();
        r.counter("kbt_a_total").add(5);
        r.gauge("kbt_b").set(2);
        r.histogram_labeled("kbt_c_ns", "verb", "query").record(3);
        r.histogram_labeled("kbt_c_ns", "verb", "stats").record(0);
        let text = r.snapshot().render();
        assert!(text.contains("# TYPE kbt_a_total counter\nkbt_a_total 5\n"));
        assert!(text.contains("# TYPE kbt_b gauge\nkbt_b 2\n"));
        // One TYPE line for the whole labeled family.
        assert_eq!(text.matches("# TYPE kbt_c_ns histogram").count(), 1);
        assert!(text.contains("kbt_c_ns_bucket{verb=\"query\",le=\"3\"} 1\n"));
        assert!(text.contains("kbt_c_ns_bucket{verb=\"query\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("kbt_c_ns_sum{verb=\"query\"} 3\n"));
        assert!(text.contains("kbt_c_ns_count{verb=\"stats\"} 1\n"));
        // Cumulative buckets: le="0" already counts the 0 sample.
        assert!(text.contains("kbt_c_ns_bucket{verb=\"stats\",le=\"0\"} 1\n"));
    }

    #[test]
    fn described_families_render_help_before_type() {
        let r = Registry::new();
        r.counter("kbt_a_total").add(5);
        r.describe("kbt_a_total", "things counted.");
        r.histogram_labeled("kbt_c_ns", "verb", "query").record(3);
        r.describe("kbt_c_ns", "latency per verb.");
        let text = r.snapshot().render();
        assert!(text.contains(
            "# HELP kbt_a_total things counted.\n# TYPE kbt_a_total counter\nkbt_a_total 5\n"
        ));
        // One HELP line for the whole labelled family, directly above TYPE.
        assert_eq!(text.matches("# HELP kbt_c_ns ").count(), 1);
        assert!(text.contains("# HELP kbt_c_ns latency per verb.\n# TYPE kbt_c_ns histogram\n"));
        // Help survives a merge into an undescribed snapshot.
        let mut merged = Registry::new().snapshot();
        merged.merge(&r.snapshot());
        assert!(merged
            .render()
            .contains("# HELP kbt_a_total things counted.\n"));
    }

    #[test]
    fn events_reach_the_sink() {
        let r = Registry::new();
        let sink = Arc::new(MemorySink::new(LogFormat::Text));
        r.event("ignored", &[]); // no sink yet
        r.set_sink(Some(sink.clone()));
        r.event("session_open", &[("peer", "127.0.0.1".to_string())]);
        r.set_sink(None);
        r.event("ignored", &[]);
        assert_eq!(sink.lines(), ["event=session_open peer=127.0.0.1"]);
    }
}
