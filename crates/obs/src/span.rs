//! Drop-timed spans.
//!
//! A [`Span`] reads the clock when created and records the elapsed
//! nanoseconds into its histogram when dropped.  Creation through
//! [`Histogram::span`] checks the owning registry's enabled flag first —
//! when timing is off a span costs one relaxed load, touches no clock,
//! and records nothing, which is what keeps instrumented hot paths free
//! when observability is disabled.
//!
//! If the registry has a log sink installed and a slow-span threshold
//! set, spans at least that long are additionally emitted as structured
//! records (the slow-query log).  Fields attached via [`Span::field`] ride
//! along on that record; when the span is disabled, `field` is a no-op so
//! callers never pay for formatting.

use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::registry::Histogram;
use crate::sink::Record;

/// A timed scope; drop records elapsed nanoseconds into the histogram.
#[must_use = "a span records on drop; binding it to _ discards the timing immediately"]
#[derive(Debug)]
pub struct Span<'a> {
    /// `None` when the registry had timing disabled at creation.
    active: Option<ActiveSpan<'a>>,
}

#[derive(Debug)]
struct ActiveSpan<'a> {
    histogram: &'a Histogram,
    event: &'static str,
    start: Instant,
    fields: Vec<(&'static str, String)>,
}

impl Histogram {
    /// Starts a span that records into this histogram, or an inert span
    /// when the registry's timing is disabled (one relaxed load).
    #[inline]
    pub fn span(&self) -> Span<'_> {
        self.span_event("")
    }

    /// Like [`Histogram::span`], with an event name used if the span is
    /// emitted to the log sink (otherwise the series name is used).
    #[inline]
    pub fn span_event(&self, event: &'static str) -> Span<'_> {
        if !self.registry.enabled.load(Ordering::Relaxed) {
            return Span { active: None };
        }
        Span {
            active: Some(ActiveSpan {
                histogram: self,
                event,
                start: Instant::now(),
                fields: Vec::new(),
            }),
        }
    }
}

impl Span<'_> {
    /// Whether this span is live (timing was enabled at creation).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.active.is_some()
    }

    /// Attaches a field carried on the slow-span log record.  No-op (and
    /// `value` is never evaluated further) on a disabled span.
    pub fn field(&mut self, key: &'static str, value: impl Into<String>) {
        if let Some(active) = &mut self.active {
            active.fields.push((key, value.into()));
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed();
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        active.histogram.cell.record(ns);
        let registry = &active.histogram.registry;
        let slow_ns = registry.slow_ns.load(Ordering::Relaxed);
        if slow_ns == 0 || ns < slow_ns || !registry.has_sink.load(Ordering::Relaxed) {
            return;
        }
        let sink = registry.sink.lock().unwrap().clone();
        if let Some(sink) = sink {
            let name = if active.event.is_empty() {
                active.histogram.name()
            } else {
                active.event
            };
            sink.emit(&Record {
                name,
                elapsed_ns: Some(ns),
                fields: &active.fields,
            });
        }
    }
}

/// Times a scope against a histogram on the **global** registry.
///
/// ```
/// # use kbt_obs::span;
/// {
///     let _span = span!("kbt_example_commit_ns");
///     // … work …
/// } // drop records elapsed ns into kbt_example_commit_ns
/// ```
///
/// The histogram handle is registered once per call site (a `OnceLock`),
/// so steady-state cost is the span itself.  For per-instance registries,
/// hold a [`Histogram`] handle and call [`Histogram::span`] directly.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static HISTOGRAM: std::sync::OnceLock<$crate::Histogram> = std::sync::OnceLock::new();
        HISTOGRAM
            .get_or_init(|| $crate::Registry::global().histogram($name))
            .span()
    }};
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;
    use crate::sink::{LogFormat, MemorySink};
    use std::sync::Arc;

    #[test]
    fn span_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("kbt_test_ns");
        {
            let _span = h.span();
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.set_enabled(false);
        let h = r.histogram("kbt_test_ns");
        {
            let mut span = h.span();
            assert!(!span.enabled());
            span.field("k", "v");
        }
        assert_eq!(h.snapshot().count, 0);
        // Counters and gauges keep recording regardless.
        r.counter("kbt_test_total").inc();
        assert_eq!(r.snapshot().value("kbt_test_total"), Some(1));
    }

    #[test]
    fn slow_spans_reach_the_sink_with_fields() {
        let r = Registry::new();
        let sink = Arc::new(MemorySink::new(LogFormat::Text));
        r.set_sink(Some(sink.clone()));
        r.set_slow_span_ns(1); // everything is "slow"
        let h = r.histogram("kbt_test_query_ns");
        {
            let mut span = h.span_event("slow_query");
            span.field("cmd", "QUERY lub");
        }
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].starts_with("event=slow_query elapsed_ns="),
            "{lines:?}"
        );
        assert!(lines[0].ends_with("cmd=\"QUERY lub\""), "{lines:?}");
        assert_eq!(h.snapshot().count, 1);

        // Below the threshold nothing is emitted (still recorded).
        r.set_slow_span_ns(u64::MAX);
        {
            let _span = h.span_event("slow_query");
        }
        assert_eq!(sink.lines().len(), 1);
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    fn span_macro_hits_the_global_registry() {
        {
            let _span = span!("kbt_obs_selftest_macro_ns");
        }
        let snap = Registry::global().snapshot();
        assert!(snap.histogram("kbt_obs_selftest_macro_ns").unwrap().count >= 1);
    }
}
