//! Fixed-bucket log-scale histograms over `u64` samples.
//!
//! A [`HistogramCell`] is 64 `AtomicU64` buckets plus a running count and
//! sum.  Bucket `i` (for `i < 63`) holds every sample whose bit length is
//! `i`, i.e. samples in `[2^(i-1), 2^i - 1]`; bucket 0 holds exactly the
//! sample `0`, and bucket 63 absorbs everything from `2^62` up.  Recording
//! is one `fetch_add` per of bucket/count/sum — lock-free, wait-free on
//! x86, and safe to call from any number of threads.
//!
//! [`HistogramSnapshot`] freezes a cell into plain integers.  Snapshots
//! merge by element-wise addition, which is associative and commutative,
//! so partial snapshots taken per-shard or per-process can be combined in
//! any order and the result is identical — the property the service layer
//! relies on when it merges its own registry with the process-global one.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64` sample.
pub const BUCKETS: usize = 64;

/// Bucket index of a sample: its bit length, clamped to the last bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i`: `2^i - 1` (the last bucket is
/// unbounded and reports `u64::MAX`).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The shared, lock-free storage behind a histogram handle.
#[derive(Debug)]
pub struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramCell {
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (three relaxed `fetch_add`s).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the cell into plain integers.  Concurrent recording is
    /// fine: the snapshot is some valid interleaving, and count/sum may
    /// trail the buckets by in-flight records — never the reverse kind of
    /// inconsistency that would make cumulative rendering go negative.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A frozen histogram: plain integers, mergeable by element-wise addition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see module docs for the bucket scheme).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping add on overflow).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise addition — associative and commutative, so any merge
    /// order over any partition of the samples yields the same snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.wrapping_add(*b);
        }
        self.count = self.count.wrapping_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 ..= 1.0`), or `None` when empty.  Resolution is one bucket,
    /// i.e. a factor of two — plenty for latency triage.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&b| b > 0)
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        self.sum.checked_div(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 0 is alone in bucket 0.
        assert_eq!(bucket_index(0), 0);
        // Bucket i covers [2^(i-1), 2^i - 1]: both edges land inside.
        for i in 1..BUCKETS - 1 {
            let lo = 1u64 << (i - 1);
            let hi = (1u64 << i) - 1;
            assert_eq!(bucket_index(lo), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(hi), i, "high edge of bucket {i}");
            assert_eq!(bucket_upper_bound(i), hi);
        }
        // The last bucket absorbs the top of the range.
        assert_eq!(bucket_index(1u64 << 62), 63);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
        // A sample never lands above its le bound and always lands above
        // the previous one.
        for v in [1u64, 2, 3, 4, 7, 8, 100, 1023, 1024, 1 << 40] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            assert!(i == 0 || v > bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let cell = Arc::new(HistogramCell::new());
        let threads = 8;
        let per_thread = 1000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        cell.record(t as u64 * per_thread + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, threads as u64 * per_thread);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        let expect_sum: u64 = (0..threads as u64 * per_thread).sum();
        assert_eq!(snap.sum, expect_sum);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |samples: &[u64]| {
            let c = HistogramCell::new();
            for &s in samples {
                c.record(s);
            }
            c.snapshot()
        };
        let a = mk(&[0, 1, 5, 1 << 20]);
        let b = mk(&[3, 3, 3, u64::MAX]);
        let c = mk(&[7, 1 << 40]);

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // b + a == a + b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // The merged snapshot equals one pass over all samples.
        let all = mk(&[0, 1, 5, 1 << 20, 3, 3, 3, u64::MAX, 7, 1 << 40]);
        assert_eq!(left, all);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let c = HistogramCell::new();
        assert_eq!(c.snapshot().quantile(0.5), None);
        for v in [1u64, 2, 4, 8, 1000] {
            c.record(v);
        }
        let s = c.snapshot();
        assert_eq!(s.quantile(0.0), Some(1)); // 1 is in bucket 1, le=1
        assert_eq!(s.quantile(0.5), Some(bucket_upper_bound(bucket_index(4))));
        assert_eq!(
            s.quantile(1.0),
            Some(bucket_upper_bound(bucket_index(1000)))
        );
        assert_eq!(s.mean(), Some((1 + 2 + 4 + 8 + 1000) / 5));
    }
}
