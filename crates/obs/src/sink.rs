//! Pluggable structured-log sinks.
//!
//! Spans and events turn into [`Record`]s; a [`LogSink`] renders them
//! somewhere.  The two built-ins write one line per record to stderr,
//! either `key=value` text or JSON — the formats behind
//! `kbt-serve --log-format {text,json}`.  Sinks must be `Send + Sync`;
//! they are called from session worker threads.

use std::fmt::Write as _;
use std::sync::Mutex;

/// One structured log record: an event name, optional elapsed time (set
/// for span records), and ordered key=value fields.
#[derive(Clone, Debug)]
pub struct Record<'a> {
    /// Event or span name, e.g. `slow_query` or `session_open`.
    pub name: &'a str,
    /// Elapsed nanoseconds, when the record came from a span.
    pub elapsed_ns: Option<u64>,
    /// Ordered fields.
    pub fields: &'a [(&'static str, String)],
}

/// Where records go.  Implementations must tolerate concurrent calls.
pub trait LogSink: Send + Sync {
    fn emit(&self, record: &Record<'_>);
}

/// Output encoding for [`StderrSink`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `event=name elapsed_ns=123 key=value …` (values quoted as needed).
    #[default]
    Text,
    /// One JSON object per line: `{"event":"name","elapsed_ns":123,…}`.
    Json,
}

impl LogFormat {
    /// Parses the `--log-format` flag value.
    pub fn parse(s: &str) -> Option<LogFormat> {
        match s {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// Renders a record as one line in the given format (no trailing newline).
pub fn format_record(format: LogFormat, record: &Record<'_>) -> String {
    match format {
        LogFormat::Text => {
            let mut line = String::new();
            let _ = write!(line, "event={}", text_value(record.name));
            if let Some(ns) = record.elapsed_ns {
                let _ = write!(line, " elapsed_ns={ns}");
            }
            for (k, v) in record.fields {
                let _ = write!(line, " {k}={}", text_value(v));
            }
            line
        }
        LogFormat::Json => {
            let mut line = String::from("{");
            let _ = write!(line, "\"event\":{}", json_string(record.name));
            if let Some(ns) = record.elapsed_ns {
                let _ = write!(line, ",\"elapsed_ns\":{ns}");
            }
            for (k, v) in record.fields {
                let _ = write!(line, ",{}:{}", json_string(k), json_string(v));
            }
            line.push('}');
            line
        }
    }
}

/// Quotes a text-format value when it contains whitespace, `"` or `=`.
fn text_value(v: &str) -> String {
    let needs_quoting =
        v.is_empty() || v.chars().any(|c| c.is_whitespace() || c == '"' || c == '=');
    if !needs_quoting {
        return v.to_string();
    }
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON string encoder (std-only; enough for log lines).
fn json_string(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Writes one formatted line per record to stderr.
#[derive(Debug, Default)]
pub struct StderrSink {
    format: LogFormat,
}

impl StderrSink {
    pub fn new(format: LogFormat) -> Self {
        Self { format }
    }
}

impl LogSink for StderrSink {
    fn emit(&self, record: &Record<'_>) {
        eprintln!("{}", format_record(self.format, record));
    }
}

/// Captures formatted lines in memory — for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    format: LogFormat,
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    pub fn new(format: LogFormat) -> Self {
        Self {
            format,
            lines: Mutex::new(Vec::new()),
        }
    }

    /// The lines captured so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }
}

impl LogSink for MemorySink {
    fn emit(&self, record: &Record<'_>) {
        self.lines
            .lock()
            .unwrap()
            .push(format_record(self.format, record));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_quotes_only_when_needed() {
        let fields = [
            ("verb", "query".to_string()),
            ("cmd", "QUERY lub".to_string()),
        ];
        let r = Record {
            name: "slow_query",
            elapsed_ns: Some(1500),
            fields: &fields,
        };
        assert_eq!(
            format_record(LogFormat::Text, &r),
            "event=slow_query elapsed_ns=1500 verb=query cmd=\"QUERY lub\""
        );
    }

    #[test]
    fn json_format_escapes_strings() {
        let fields = [("msg", "a\"b\nc".to_string())];
        let r = Record {
            name: "note",
            elapsed_ns: None,
            fields: &fields,
        };
        assert_eq!(
            format_record(LogFormat::Json, &r),
            "{\"event\":\"note\",\"msg\":\"a\\\"b\\nc\"}"
        );
    }

    #[test]
    fn log_format_parses_flag_values() {
        assert_eq!(LogFormat::parse("text"), Some(LogFormat::Text));
        assert_eq!(LogFormat::parse("json"), Some(LogFormat::Json));
        assert_eq!(LogFormat::parse("yaml"), None);
    }
}
