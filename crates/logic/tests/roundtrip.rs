//! The parser / pretty-printer round-trip identity: `parse(pretty(φ)) == φ`
//! as ASTs, for every formula — not just the ones the printer happens to
//! spell the way a human would.
//!
//! The service's wire format depends on this identity: `DEFINE`d
//! transformations are stored and re-transmitted as rendered text, so a
//! rendering that re-parses to a *different* sentence would silently serve
//! a different transformation.  Two layers of coverage:
//!
//! 1. an exhaustive sweep over every AST of small depth (catches any
//!    precedence/parenthesization slip deterministically), and
//! 2. a randomized proptest over much deeper formulas mixing quantifier
//!    blocks, negation, equality and all binary connectives.
//!
//! Relation and constant names are registered in a [`Vocabulary`] up front
//! and the text is re-parsed against a clone of it, exactly like a service
//! client sharing the server's vocabulary — interning order can then never
//! shift the ids.

use kbt_data::{Const, Vocabulary};
use kbt_logic::builder::*;
use kbt_logic::parser::parse_formula;
use kbt_logic::pretty::render;
use kbt_logic::{Formula, Term, Var};
use proptest::prelude::*;

/// The fixed vocabulary both sides share: relations `R0`..`R4` with arities
/// 0..=2 (two binary ones), constants `a`, `b`.
fn shared_vocab() -> Vocabulary {
    let mut v = Vocabulary::new();
    v.relation("R0", 0).unwrap();
    v.relation("R1", 1).unwrap();
    v.relation("R2", 2).unwrap();
    v.relation("R3", 2).unwrap();
    v.relation("R4", 1).unwrap();
    v.constant("a");
    v.constant("b");
    v
}

/// Asserts the round-trip identity for one formula.
fn assert_roundtrip(f: &Formula, vocab: &Vocabulary) {
    let printed = render(f, Some(vocab));
    let mut reparse_vocab = vocab.clone();
    let reparsed = parse_formula(&printed, &mut reparse_vocab)
        .unwrap_or_else(|e| panic!("rendered text must re-parse: {printed:?}: {e}"));
    assert_eq!(
        &reparsed, f,
        "parse(pretty(φ)) must be φ — rendered as {printed:?}"
    );
}

/// Every formula of the given depth over a small leaf set (depth 0 = the
/// leaves themselves).
fn enumerate(depth: usize) -> Vec<Formula> {
    let leaves: Vec<Formula> = vec![
        atom(0, []),
        atom(1, [var(0)]),
        eq(Term::Var(Var::new(0)), Term::Const(Const::new(7))),
        Formula::True,
    ];
    let mut by_depth: Vec<Vec<Formula>> = vec![leaves];
    for d in 1..=depth {
        let prev: Vec<Formula> = by_depth[..d].iter().flatten().cloned().collect();
        let mut next = Vec::new();
        for f in &prev {
            next.push(not(f.clone()));
            next.push(exists([1], f.clone()));
            next.push(forall([2], f.clone()));
        }
        for l in &prev {
            for r in &prev {
                next.push(and(l.clone(), r.clone()));
                next.push(or(l.clone(), r.clone()));
                next.push(implies(l.clone(), r.clone()));
                next.push(iff(l.clone(), r.clone()));
            }
        }
        by_depth.push(next);
    }
    by_depth.into_iter().flatten().collect()
}

#[test]
fn roundtrip_is_exact_for_all_small_formulas() {
    let vocab = shared_vocab();
    let all = enumerate(2);
    assert!(all.len() > 5_000, "the sweep must actually be exhaustive");
    for f in &all {
        assert_roundtrip(f, &vocab);
    }
}

/// Builds one random formula from a code script with a little stack
/// machine: leaves are pushed, connectives pop their operands.  Everything
/// left on the stack at the end is conjoined, so every script yields a
/// formula.
fn build_formula(codes: &[(u8, u8, u8)]) -> Formula {
    let mut stack: Vec<Formula> = Vec::new();
    for &(op, a, b) in codes {
        let v = |i: u8| Term::Var(Var::new(u32::from(i % 4)));
        let c = |i: u8| {
            // mix vocabulary-named constants (0, 1) with raw indices
            Term::Const(Const::new(u32::from(i % 9)))
        };
        match op % 10 {
            0 => stack.push(match a % 6 {
                0 => atom(0, []),
                1 => atom(1, [v(a)]),
                2 => atom(2, [v(a), c(b)]),
                3 => atom(3, [c(a), v(b)]),
                4 => atom(4, [v(b)]),
                _ => eq(v(a), c(b)),
            }),
            1 => stack.push(match a % 3 {
                0 => Formula::True,
                1 => Formula::False,
                _ => eq(v(a), v(b)),
            }),
            2 => {
                if let Some(f) = stack.pop() {
                    stack.push(not(f));
                }
            }
            3 => {
                if let Some(f) = stack.pop() {
                    stack.push(exists([u32::from(a % 4)], f));
                }
            }
            4 => {
                if let Some(f) = stack.pop() {
                    stack.push(forall([u32::from(a % 4)], f));
                }
            }
            op_code => {
                if let (Some(r), Some(l)) = (stack.pop(), stack.pop()) {
                    stack.push(match op_code {
                        5 => and(l, r),
                        6 => or(l, r),
                        7 => implies(l, r),
                        8 => iff(l, r),
                        _ => and(not(l), r),
                    });
                }
            }
        }
    }
    stack.into_iter().reduce(and).unwrap_or(Formula::True)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_is_exact_for_random_deep_formulas(
        codes in proptest::collection::vec((0u8..10, 0u8..12, 0u8..12), 1..60)
    ) {
        let vocab = shared_vocab();
        let f = build_formula(&codes);
        let printed = render(&f, Some(&vocab));
        let mut reparse_vocab = vocab.clone();
        let reparsed = parse_formula(&printed, &mut reparse_vocab);
        prop_assert!(reparsed.is_ok(), "rendered text must re-parse: {:?}", printed);
        let reparsed = reparsed.unwrap();
        prop_assert!(
            reparsed == f,
            "round-trip changed the AST: {:?} rendered as {:?} re-parsed as {:?}",
            f,
            printed,
            reparsed
        );
    }
}
