//! Grounding: expanding a sentence over a finite domain into a propositional
//! formula over ground atoms.
//!
//! The `µ` function of the paper (definition (9)) only looks at databases
//! whose values come from the finite set `B` of constants appearing in the
//! input database or the inserted sentence.  Over such a finite domain a
//! first-order sentence is equivalent to a propositional combination of
//! *ground atoms* `R(ā)`; the SAT-based update evaluator in `kbt-core`
//! operates on that propositional form.

use std::collections::BTreeSet;
use std::fmt;

use kbt_data::{Const, Database, RelId, Tuple};

use crate::formula::Formula;
use crate::sentence::Sentence;
use crate::term::{Term, Var};
use crate::Interpretation;

/// A ground atom `R(ā)`: a relation symbol applied to constants only.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument tuple (all constants).
    pub tuple: Tuple,
}

impl GroundAtom {
    /// Builds a ground atom.
    pub fn new(rel: RelId, tuple: Tuple) -> Self {
        GroundAtom { rel, tuple }
    }
}

impl fmt::Debug for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.rel, self.tuple)
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A propositional formula over ground atoms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GroundFormula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A ground atom.
    Atom(GroundAtom),
    /// Negation.
    Not(Box<GroundFormula>),
    /// N-ary conjunction.
    And(Vec<GroundFormula>),
    /// N-ary disjunction.
    Or(Vec<GroundFormula>),
}

impl GroundFormula {
    /// Smart conjunction with constant folding and flattening.
    pub fn and(parts: Vec<GroundFormula>) -> GroundFormula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                GroundFormula::True => {}
                GroundFormula::False => return GroundFormula::False,
                GroundFormula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => GroundFormula::True,
            1 => flat.pop().expect("len checked"),
            _ => GroundFormula::And(flat),
        }
    }

    /// Smart disjunction with constant folding and flattening.
    pub fn or(parts: Vec<GroundFormula>) -> GroundFormula {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                GroundFormula::False => {}
                GroundFormula::True => return GroundFormula::True,
                GroundFormula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => GroundFormula::False,
            1 => flat.pop().expect("len checked"),
            _ => GroundFormula::Or(flat),
        }
    }

    /// Smart negation with constant folding and double-negation elimination.
    pub fn negate(self) -> GroundFormula {
        match self {
            GroundFormula::True => GroundFormula::False,
            GroundFormula::False => GroundFormula::True,
            GroundFormula::Not(inner) => *inner,
            other => GroundFormula::Not(Box::new(other)),
        }
    }

    /// All ground atoms occurring in the formula.
    pub fn atoms(&self) -> BTreeSet<GroundAtom> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut BTreeSet<GroundAtom>) {
        match self {
            GroundFormula::True | GroundFormula::False => {}
            GroundFormula::Atom(a) => {
                out.insert(a.clone());
            }
            GroundFormula::Not(inner) => inner.collect_atoms(out),
            GroundFormula::And(parts) | GroundFormula::Or(parts) => {
                for p in parts {
                    p.collect_atoms(out);
                }
            }
        }
    }

    /// Number of nodes of the ground formula.
    pub fn size(&self) -> usize {
        match self {
            GroundFormula::True | GroundFormula::False | GroundFormula::Atom(_) => 1,
            GroundFormula::Not(inner) => 1 + inner.size(),
            GroundFormula::And(parts) | GroundFormula::Or(parts) => {
                1 + parts.iter().map(GroundFormula::size).sum::<usize>()
            }
        }
    }

    /// Evaluates the ground formula against a set of true atoms (closed
    /// world: atoms not in the set are false).
    pub fn eval(&self, true_atoms: &BTreeSet<GroundAtom>) -> bool {
        match self {
            GroundFormula::True => true,
            GroundFormula::False => false,
            GroundFormula::Atom(a) => true_atoms.contains(a),
            GroundFormula::Not(inner) => !inner.eval(true_atoms),
            GroundFormula::And(parts) => parts.iter().all(|p| p.eval(true_atoms)),
            GroundFormula::Or(parts) => parts.iter().any(|p| p.eval(true_atoms)),
        }
    }

    /// Evaluates the ground formula against a database (an atom is true iff
    /// the corresponding fact is stored).
    pub fn eval_against(&self, db: &Database) -> bool {
        match self {
            GroundFormula::True => true,
            GroundFormula::False => false,
            GroundFormula::Atom(a) => db.holds(a.rel, &a.tuple),
            GroundFormula::Not(inner) => !inner.eval_against(db),
            GroundFormula::And(parts) => parts.iter().all(|p| p.eval_against(db)),
            GroundFormula::Or(parts) => parts.iter().any(|p| p.eval_against(db)),
        }
    }
}

impl fmt::Debug for GroundFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundFormula::True => write!(f, "⊤"),
            GroundFormula::False => write!(f, "⊥"),
            GroundFormula::Atom(a) => write!(f, "{a}"),
            GroundFormula::Not(inner) => write!(f, "¬{inner:?}"),
            GroundFormula::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p:?}")?;
                }
                write!(f, ")")
            }
            GroundFormula::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Grounds a sentence over the given finite domain.
pub fn ground_sentence(sentence: &Sentence, domain: &BTreeSet<Const>) -> GroundFormula {
    let mut env = Interpretation::new();
    ground(sentence.formula(), domain, &mut env)
}

/// Grounds an arbitrary formula under a (partial) assignment; free variables
/// not bound by `env` must not occur.
pub fn ground(f: &Formula, domain: &BTreeSet<Const>, env: &mut Interpretation) -> GroundFormula {
    match f {
        Formula::True => GroundFormula::True,
        Formula::False => GroundFormula::False,
        Formula::Eq(a, b) => {
            if term_value(a, env) == term_value(b, env) {
                GroundFormula::True
            } else {
                GroundFormula::False
            }
        }
        Formula::Atom(rel, args) => {
            let tuple = Tuple::new(args.iter().map(|t| term_value(t, env)).collect::<Vec<_>>());
            GroundFormula::Atom(GroundAtom::new(*rel, tuple))
        }
        Formula::Not(inner) => ground(inner, domain, env).negate(),
        Formula::And(a, b) => {
            GroundFormula::and(vec![ground(a, domain, env), ground(b, domain, env)])
        }
        Formula::Or(a, b) => {
            GroundFormula::or(vec![ground(a, domain, env), ground(b, domain, env)])
        }
        Formula::Implies(a, b) => GroundFormula::or(vec![
            ground(a, domain, env).negate(),
            ground(b, domain, env),
        ]),
        Formula::Iff(a, b) => {
            let ga = ground(a, domain, env);
            let gb = ground(b, domain, env);
            GroundFormula::and(vec![
                GroundFormula::or(vec![ga.clone().negate(), gb.clone()]),
                GroundFormula::or(vec![gb.negate(), ga]),
            ])
        }
        Formula::Exists(v, inner) => GroundFormula::or(expand_quantifier(*v, inner, domain, env)),
        Formula::Forall(v, inner) => GroundFormula::and(expand_quantifier(*v, inner, domain, env)),
    }
}

fn expand_quantifier(
    v: Var,
    inner: &Formula,
    domain: &BTreeSet<Const>,
    env: &mut Interpretation,
) -> Vec<GroundFormula> {
    let saved = env.get(&v).copied();
    let mut parts = Vec::with_capacity(domain.len());
    for &c in domain {
        env.insert(v, c);
        parts.push(ground(inner, domain, env));
    }
    match saved {
        Some(c) => {
            env.insert(v, c);
        }
        None => {
            env.remove(&v);
        }
    }
    parts
}

fn term_value(t: &Term, env: &Interpretation) -> Const {
    match t {
        Term::Const(c) => *c,
        Term::Var(v) => *env
            .get(v)
            .unwrap_or_else(|| panic!("unbound variable {v} during grounding")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::eval::satisfies_with_domain;
    use kbt_data::DatabaseBuilder;

    fn dom(cs: &[u32]) -> BTreeSet<Const> {
        cs.iter().map(|&c| Const::new(c)).collect()
    }

    #[test]
    fn grounding_expands_quantifiers_over_the_domain() {
        // ∃x R(x) over {1,2} ≡ R(1) ∨ R(2)
        let s = Sentence::new(exists([1], atom(1, [var(1)]))).unwrap();
        let g = ground_sentence(&s, &dom(&[1, 2]));
        assert_eq!(g.atoms().len(), 2);
        match g {
            GroundFormula::Or(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn equality_folds_to_constants() {
        let s = Sentence::new(forall([1], or(eq(var(1), cst(1)), eq(var(1), cst(2))))).unwrap();
        // over domain {1,2} every disjunct chain is true, so the whole thing folds to ⊤
        assert_eq!(ground_sentence(&s, &dom(&[1, 2])), GroundFormula::True);
        // over {1,2,3} the x=3 instance is ⊥ ∨ ⊥ = ⊥, so the conjunction is ⊥
        assert_eq!(ground_sentence(&s, &dom(&[1, 2, 3])), GroundFormula::False);
    }

    #[test]
    fn grounding_agrees_with_direct_model_checking() {
        // φ = ∀x∃y R(x,y) on several small databases
        let phi = Sentence::new(forall([1], exists([2], atom(1, [var(1), var(2)])))).unwrap();
        let cases: Vec<Vec<(u32, u32)>> =
            vec![vec![(1, 2), (2, 1)], vec![(1, 2), (2, 3)], vec![(1, 1)]];
        for edges in cases {
            let mut b = DatabaseBuilder::new().relation(RelId::new(1), 2);
            for &(x, y) in &edges {
                b = b.fact(RelId::new(1), [x, y]);
            }
            let db = b.build().unwrap();
            let domain = db.constants();
            let direct = satisfies_with_domain(&db, &phi, &domain).unwrap();
            let grounded = ground_sentence(&phi, &domain).eval_against(&db);
            assert_eq!(direct, grounded, "disagreement on {edges:?}");
        }
    }

    #[test]
    fn size_and_atom_collection() {
        let s = Sentence::new(forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ))
        .unwrap();
        let g = ground_sentence(&s, &dom(&[1, 2]));
        // 4 instantiations, each ¬R1(x,y) ∨ R2(x,y)
        assert_eq!(g.atoms().len(), 8);
        assert!(g.size() > 8);
    }

    #[test]
    fn eval_against_atom_set() {
        let a = GroundAtom::new(RelId::new(1), kbt_data::tuple![1]);
        let g = GroundFormula::or(vec![GroundFormula::Atom(a.clone()), GroundFormula::False]);
        let mut set = BTreeSet::new();
        assert!(!g.eval(&set));
        set.insert(a);
        assert!(g.eval(&set));
    }
}
