//! # kbt-logic — the first-order logic substrate
//!
//! Function-free first-order logic with equality, as defined in Section 2 of
//! *Knowledgebase Transformations*: the language `L` built from domain
//! elements, variables, relation symbols, `∧`, `¬`, `∃` and `=`.  On top of
//! the paper's minimal syntax this crate provides the usual derived
//! connectives (`∨`, `→`, `↔`, `∀`), a text parser, pretty-printing, and the
//! machinery needed by the transformation language:
//!
//! * [`eval`] — active-domain model checking, definitions (4)–(8) of the
//!   paper,
//! * [`ground`] — grounding of a sentence over a finite domain into a
//!   propositional formula over ground atoms (used by the SAT-based update
//!   evaluator and by the complexity experiments),
//! * [`classify`] — syntactic classification: ground / quantifier-free /
//!   existential / universal-Horn (the PTIME fragments of Theorems 4.7
//!   and 4.8),
//! * [`horn`] — extraction of Datalog-style Horn clauses from sentences,
//! * [`nnf`] — negation normal form,
//! * [`parser`] — a small recursive-descent parser for a readable surface
//!   syntax.

pub mod builder;
pub mod classify;
pub mod error;
pub mod eval;
pub mod formula;
pub mod ground;
pub mod horn;
pub mod nnf;
pub mod parser;
pub mod pretty;
pub mod sentence;
pub mod term;
pub mod vars;

pub use builder::*;
pub use classify::{is_existential, is_ground, is_quantifier_free, FormulaClass};
pub use error::LogicError;
pub use eval::{satisfies, satisfies_with_domain, Interpretation};
pub use formula::Formula;
pub use ground::{ground_sentence, GroundAtom, GroundFormula};
pub use horn::{horn_clauses, HornClause};
pub use parser::parse_formula;
pub use pretty::render;
pub use sentence::Sentence;
pub use term::{Term, Var};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LogicError>;
