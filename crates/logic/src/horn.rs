//! Extraction of function-free Horn clauses (Datalog rules) from sentences.
//!
//! A sentence is *Datalog-restricted* in the sense of Theorem 4.8 if it is a
//! conjunction of universally quantified function-free Horn clauses
//! `∀x̄ (B₁ ∧ … ∧ Bₙ → H)` with positive atomic body literals and a positive
//! atomic head.  Inserting such a sentence into a database yields its unique
//! least fixpoint, which the Datalog engine in `kbt-datalog` computes in
//! polynomial time.

use kbt_data::RelId;

use crate::formula::Formula;
use crate::sentence::Sentence;
use crate::term::Term;

/// One Horn clause `body → head` (an empty body encodes a fact).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HornClause {
    /// Head atom: relation symbol and argument terms.
    pub head: (RelId, Vec<Term>),
    /// Body atoms (all positive).
    pub body: Vec<(RelId, Vec<Term>)>,
}

impl HornClause {
    /// Relation symbols occurring in the body.
    pub fn body_relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.body.iter().map(|(r, _)| *r)
    }

    /// The head relation symbol.
    pub fn head_relation(&self) -> RelId {
        self.head.0
    }
}

/// If the sentence is a conjunction of universally quantified Horn clauses,
/// returns them; otherwise returns `None`.
pub fn horn_clauses(sentence: &Sentence) -> Option<Vec<HornClause>> {
    let mut clauses = Vec::new();
    if collect_conjuncts(sentence.formula(), &mut clauses) {
        Some(clauses)
    } else {
        None
    }
}

fn collect_conjuncts(f: &Formula, out: &mut Vec<HornClause>) -> bool {
    match f {
        Formula::And(a, b) => collect_conjuncts(a, out) && collect_conjuncts(b, out),
        Formula::True => true,
        other => match as_clause(other) {
            Some(c) => {
                out.push(c);
                true
            }
            None => false,
        },
    }
}

/// Strips the leading block of universal quantifiers and parses the matrix as
/// `body → head` or a bare head atom.
fn as_clause(f: &Formula) -> Option<HornClause> {
    let mut inner = f;
    while let Formula::Forall(_, next) = inner {
        inner = next;
    }
    match inner {
        Formula::Atom(rel, args) => Some(HornClause {
            head: (*rel, args.clone()),
            body: Vec::new(),
        }),
        Formula::Implies(body, head) => {
            let head = match head.as_ref() {
                Formula::Atom(rel, args) => (*rel, args.clone()),
                _ => return None,
            };
            let mut body_atoms = Vec::new();
            if !collect_body(body, &mut body_atoms) {
                return None;
            }
            Some(HornClause {
                head,
                body: body_atoms,
            })
        }
        _ => None,
    }
}

fn collect_body(f: &Formula, out: &mut Vec<(RelId, Vec<Term>)>) -> bool {
    match f {
        Formula::And(a, b) => collect_body(a, out) && collect_body(b, out),
        Formula::Atom(rel, args) => {
            out.push((*rel, args.clone()));
            true
        }
        Formula::True => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn transitive_closure_program_is_horn() {
        // ∀x,y (R1(x,y) → R2(x,y)) ∧ ∀x,y,z (R2(x,y) ∧ R1(y,z) → R2(x,z))
        let s = Sentence::new(and(
            forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
            ),
            forall(
                [1, 2, 3],
                implies(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(2, [var(1), var(3)]),
                ),
            ),
        ))
        .unwrap();
        let clauses = horn_clauses(&s).expect("is Horn");
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0].body.len(), 1);
        assert_eq!(clauses[1].body.len(), 2);
        assert_eq!(clauses[1].head_relation(), RelId::new(2));
    }

    #[test]
    fn facts_and_empty_bodies_are_allowed() {
        let s = Sentence::new(and(
            atom(1, [cst(1), cst(2)]),
            forall([1], implies(Formula::True, atom(2, [var(1), var(1)]))),
        ))
        .unwrap();
        let clauses = horn_clauses(&s).expect("is Horn");
        assert_eq!(clauses.len(), 2);
        assert!(clauses[0].body.is_empty());
        assert!(clauses[1].body.is_empty());
    }

    #[test]
    fn negation_disjunction_and_iff_are_rejected() {
        let neg = Sentence::new(forall(
            [1, 2],
            implies(not(atom(1, [var(1), var(2)])), atom(2, [var(1), var(2)])),
        ))
        .unwrap();
        assert!(horn_clauses(&neg).is_none());

        let disj_head = Sentence::new(forall(
            [1],
            implies(atom(1, [var(1)]), or(atom(2, [var(1)]), atom(3, [var(1)]))),
        ))
        .unwrap();
        assert!(horn_clauses(&disj_head).is_none());

        let bidir = Sentence::new(forall(
            [1, 2],
            iff(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ))
        .unwrap();
        assert!(horn_clauses(&bidir).is_none());
    }
}
