//! Well-formed formulas of the language `L`.

use kbt_data::{RelId, Schema};
use std::fmt;

use crate::term::{Term, Var};

/// A well-formed formula (the set `Φ'` of the paper).
///
/// The paper's primitive connectives are `∧`, `¬`, `∃` and `=`; the other
/// connectives and the universal quantifier are provided as first-class
/// constructors for readability and are treated by every algorithm in this
/// workspace either directly or through [`Formula::desugar`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// The always-true formula (empty conjunction).
    True,
    /// The always-false formula (empty disjunction).
    False,
    /// An atomic formula `R_i(t_1, …, t_k)`.
    Atom(RelId, Vec<Term>),
    /// An equality `t_1 = t_2`.
    Eq(Term, Term),
    /// Negation `¬φ`.
    Not(Box<Formula>),
    /// Conjunction `φ ∧ ψ`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `φ ∨ ψ`.
    Or(Box<Formula>, Box<Formula>),
    /// Implication `φ → ψ`.
    Implies(Box<Formula>, Box<Formula>),
    /// Biconditional `φ ↔ ψ`.
    Iff(Box<Formula>, Box<Formula>),
    /// Existential quantification `∃x φ`.
    Exists(Var, Box<Formula>),
    /// Universal quantification `∀x φ`.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// The schema `σ(φ)`: every relation symbol occurring in the formula,
    /// with its arity as used.
    ///
    /// If a relation symbol is used with two different arities the first
    /// occurrence wins; [`crate::vars::check_arities`] reports such clashes.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        self.visit_atoms(&mut |rel, args| {
            let _ = s.add(rel, args.len());
        });
        s
    }

    /// Calls `f` on every atom `R(t̄)` of the formula.
    pub fn visit_atoms(&self, f: &mut impl FnMut(RelId, &[Term])) {
        match self {
            Formula::True | Formula::False | Formula::Eq(_, _) => {}
            Formula::Atom(rel, args) => f(*rel, args),
            Formula::Not(inner) => inner.visit_atoms(f),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                a.visit_atoms(f);
                b.visit_atoms(f);
            }
            Formula::Exists(_, inner) | Formula::Forall(_, inner) => inner.visit_atoms(f),
        }
    }

    /// Calls `f` on every term occurrence of the formula.
    pub fn visit_terms(&self, f: &mut impl FnMut(&Term)) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(_, args) => args.iter().for_each(&mut *f),
            Formula::Eq(a, b) => {
                f(a);
                f(b);
            }
            Formula::Not(inner) => inner.visit_terms(f),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                a.visit_terms(f);
                b.visit_terms(f);
            }
            Formula::Exists(_, inner) | Formula::Forall(_, inner) => inner.visit_terms(f),
        }
    }

    /// All constants occurring in the formula.
    pub fn constants(&self) -> std::collections::BTreeSet<kbt_data::Const> {
        let mut out = std::collections::BTreeSet::new();
        self.visit_terms(&mut |t| {
            if let Term::Const(c) = t {
                out.insert(*c);
            }
        });
        out
    }

    /// Rewrites the derived connectives (`∨`, `→`, `↔`, `∀`, `True`,
    /// `False`) into the paper's primitive ones (`∧`, `¬`, `∃`, `=`).
    ///
    /// `True` becomes `¬∃x (¬ x = x)`-free: we use `x0 = x0`-style identities
    /// only when a variable-free encoding is impossible, so `True` maps to
    /// `¬(False)` with `False` encoded as `¬(c = c)` over a fresh constant
    /// `a_0`; since equality of a constant with itself is always true this is
    /// faithful.
    pub fn desugar(&self) -> Formula {
        use Formula::*;
        match self {
            True => Not(Box::new(False.desugar())),
            False => {
                let c = Term::Const(kbt_data::Const::new(0));
                Not(Box::new(Eq(c, c)))
            }
            Atom(r, args) => Atom(*r, args.clone()),
            Eq(a, b) => Eq(*a, *b),
            Not(inner) => Not(Box::new(inner.desugar())),
            And(a, b) => And(Box::new(a.desugar()), Box::new(b.desugar())),
            Or(a, b) => Not(Box::new(And(
                Box::new(Not(Box::new(a.desugar()))),
                Box::new(Not(Box::new(b.desugar()))),
            ))),
            Implies(a, b) => Not(Box::new(And(
                Box::new(a.desugar()),
                Box::new(Not(Box::new(b.desugar()))),
            ))),
            Iff(a, b) => {
                let fwd = Implies(a.clone(), b.clone()).desugar();
                let bwd = Implies(b.clone(), a.clone()).desugar();
                And(Box::new(fwd), Box::new(bwd))
            }
            Exists(v, inner) => Exists(*v, Box::new(inner.desugar())),
            Forall(v, inner) => Not(Box::new(Exists(
                *v,
                Box::new(Not(Box::new(inner.desugar()))),
            ))),
        }
    }

    /// Number of connective/quantifier/atom nodes — the formula length `|φ|`
    /// used by the expression-complexity experiments.
    pub fn size(&self) -> usize {
        use Formula::*;
        match self {
            True | False | Atom(_, _) | Eq(_, _) => 1,
            Not(inner) => 1 + inner.size(),
            And(a, b) | Or(a, b) | Implies(a, b) | Iff(a, b) => 1 + a.size() + b.size(),
            Exists(_, inner) | Forall(_, inner) => 1 + inner.size(),
        }
    }

    /// Maximum quantifier nesting depth.
    pub fn quantifier_depth(&self) -> usize {
        use Formula::*;
        match self {
            True | False | Atom(_, _) | Eq(_, _) => 0,
            Not(inner) => inner.quantifier_depth(),
            And(a, b) | Or(a, b) | Implies(a, b) | Iff(a, b) => {
                a.quantifier_depth().max(b.quantifier_depth())
            }
            Exists(_, inner) | Forall(_, inner) => 1 + inner.quantifier_depth(),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::render(self, None))
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn schema_collects_relations_and_arities() {
        // ∀x1 x2 x3: (R2(x1,x2) ∧ R1(x2,x3)) ∨ R1(x1,x3) → R2(x1,x3)
        let f = crate::builder::forall(
            [1, 2, 3],
            implies(
                or(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(1, [var(1), var(3)]),
                ),
                atom(2, [var(1), var(3)]),
            ),
        );
        let s = f.schema();
        assert_eq!(s.arity(RelId::new(1)), Some(2));
        assert_eq!(s.arity(RelId::new(2)), Some(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn constants_are_collected() {
        let f = and(atom(1, [cst(3), var(1)]), eq(cst(5), var(1)));
        let cs: Vec<_> = f.constants().into_iter().collect();
        assert_eq!(cs, vec![kbt_data::Const::new(3), kbt_data::Const::new(5)]);
    }

    #[test]
    fn size_and_depth() {
        let f = forall([1], exists([2], atom(1, [var(1), var(2)])));
        assert_eq!(f.size(), 3);
        assert_eq!(f.quantifier_depth(), 2);
    }

    #[test]
    fn desugar_removes_derived_connectives() {
        fn only_primitive(f: &Formula) -> bool {
            use Formula::*;
            match f {
                True | False => false,
                Atom(_, _) | Eq(_, _) => true,
                Not(i) => only_primitive(i),
                And(a, b) => only_primitive(a) && only_primitive(b),
                Or(_, _) | Implies(_, _) | Iff(_, _) | Forall(_, _) => false,
                Exists(_, i) => only_primitive(i),
            }
        }
        let f = iff(
            or(atom(1, [var(1)]), Formula::True),
            forall([2], implies(atom(2, [var(2)]), Formula::False)),
        );
        assert!(only_primitive(&f.desugar()));
    }
}
