//! A small recursive-descent parser for a readable formula surface syntax.
//!
//! Grammar (precedence from loosest to tightest):
//!
//! ```text
//! formula  := quantified
//! quantified := ("forall" | "exists") var+ "." quantified | iff
//! iff      := implies ( "<->" implies )*
//! implies  := or ( "->" implies )?                -- right associative
//! or       := and ( ("|" | "or") and )*
//! and      := unary ( ("&" | "and") unary )*
//! unary    := ("~" | "!" | "not") unary | primary
//! primary  := "(" formula ")" | "true" | "false"
//!           | IDENT "(" terms? ")"                -- relation atom
//!           | term ("=" | "!=") term
//! term     := IDENT            -- variable (e.g. x, y, x3)
//!           | NUMBER           -- constant a_NUMBER
//!           | "'" chars "'"    -- named constant, interned in the vocabulary
//! ```
//!
//! Relation names are interned in the supplied [`Vocabulary`] with the arity
//! observed at the call site; named constants likewise.  Variables are scoped
//! per call to [`parse_formula`]; their indices are assigned in order of first
//! appearance, unless the variable name has the form `x<digits>`, in which
//! case the digits give the index (so round-tripping through
//! [`crate::pretty::render`] is exact).

use std::collections::BTreeMap;

use kbt_data::Vocabulary;

use crate::builder::{and, atom_r, eq, iff, implies, not, or};
use crate::error::LogicError;
use crate::formula::Formula;
use crate::sentence::Sentence;
use crate::term::{Term, Var};
use crate::Result;

/// Parses a formula, interning relation and constant names into `vocab`.
pub fn parse_formula(input: &str, vocab: &mut Vocabulary) -> Result<Formula> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        vocab,
        vars: BTreeMap::new(),
        next_var: 0,
        input_len: input.len(),
    };
    let f = p.formula()?;
    p.expect_end()?;
    Ok(f)
}

/// Parses a sentence (a closed formula).
pub fn parse_sentence(input: &str, vocab: &mut Vocabulary) -> Result<Sentence> {
    Sentence::new(parse_formula(input, vocab)?)
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Number(u32),
    Quoted(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Amp,
    Pipe,
    Tilde,
    Arrow,
    DoubleArrow,
    Eq,
    Neq,
}

fn lex(input: &str) -> Result<Vec<(Token, usize)>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, i));
                i += 1;
            }
            ',' => {
                out.push((Token::Comma, i));
                i += 1;
            }
            '.' => {
                out.push((Token::Dot, i));
                i += 1;
            }
            '&' => {
                out.push((Token::Amp, i));
                i += 1;
            }
            '|' => {
                out.push((Token::Pipe, i));
                i += 1;
            }
            '~' | '!' => {
                if c == '!' && bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Neq, i));
                    i += 2;
                } else {
                    out.push((Token::Tilde, i));
                    i += 1;
                }
            }
            '=' => {
                out.push((Token::Eq, i));
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Token::Arrow, i));
                    i += 2;
                } else {
                    return Err(LogicError::Parse {
                        message: "expected '->'".into(),
                        offset: i,
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'-') && bytes.get(i + 2) == Some(&b'>') {
                    out.push((Token::DoubleArrow, i));
                    i += 3;
                } else {
                    return Err(LogicError::Parse {
                        message: "expected '<->'".into(),
                        offset: i,
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != '\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LogicError::Parse {
                        message: "unterminated quoted constant".into(),
                        offset: i,
                    });
                }
                out.push((Token::Quoted(input[start..j].to_string()), i));
                i = j + 1;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: u32 = input[start..i].parse().map_err(|_| LogicError::Parse {
                    message: "number too large".into(),
                    offset: start,
                })?;
                out.push((Token::Number(n), start));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push((Token::Ident(input[start..i].to_string()), start));
            }
            _ => {
                return Err(LogicError::Parse {
                    message: format!("unexpected character {c:?}"),
                    offset: i,
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    vocab: &'a mut Vocabulary,
    vars: BTreeMap<String, Var>,
    next_var: u32,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(_, o)| o)
            .unwrap_or(self.input_len)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token) -> Result<()> {
        let offset = self.offset();
        match self.advance() {
            Some(ref t) if t == expected => Ok(()),
            other => Err(LogicError::Parse {
                message: format!("expected {expected:?}, found {other:?}"),
                offset,
            }),
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(LogicError::Parse {
                message: format!("unexpected trailing input: {:?}", self.peek()),
                offset: self.offset(),
            })
        }
    }

    fn variable(&mut self, name: &str) -> Var {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        // names of the form x<digits> keep their numeric index for exact
        // round-tripping with the pretty-printer.
        let v = if let Some(rest) = name.strip_prefix('x') {
            if let Ok(i) = rest.parse::<u32>() {
                Var::new(i)
            } else {
                self.fresh_var()
            }
        } else {
            self.fresh_var()
        };
        self.vars.insert(name.to_string(), v);
        if v.index() >= self.next_var {
            self.next_var = v.index() + 1;
        }
        v
    }

    fn fresh_var(&mut self) -> Var {
        // skip indices already taken by explicit x<digit> names
        loop {
            let v = Var::new(self.next_var);
            self.next_var += 1;
            if !self.vars.values().any(|&w| w == v) {
                return v;
            }
        }
    }

    fn formula(&mut self) -> Result<Formula> {
        match self.peek() {
            Some(Token::Ident(name)) if name == "forall" || name == "exists" => {
                let is_forall = name == "forall";
                self.advance();
                let mut vars = Vec::new();
                loop {
                    match self.peek() {
                        Some(Token::Ident(n)) if n != "forall" && n != "exists" => {
                            let n = n.clone();
                            self.advance();
                            vars.push(self.variable(&n));
                        }
                        Some(Token::Dot) => break,
                        other => {
                            return Err(LogicError::Parse {
                                message: format!("expected variable or '.', found {other:?}"),
                                offset: self.offset(),
                            })
                        }
                    }
                }
                self.expect(&Token::Dot)?;
                if vars.is_empty() {
                    return Err(LogicError::Parse {
                        message: "quantifier binds no variables".into(),
                        offset: self.offset(),
                    });
                }
                let body = self.formula()?;
                Ok(vars.into_iter().rev().fold(body, |acc, v| {
                    if is_forall {
                        Formula::Forall(v, Box::new(acc))
                    } else {
                        Formula::Exists(v, Box::new(acc))
                    }
                }))
            }
            _ => self.iff(),
        }
    }

    fn iff(&mut self) -> Result<Formula> {
        let mut left = self.implies()?;
        while self.peek() == Some(&Token::DoubleArrow) {
            self.advance();
            let right = self.implies()?;
            left = iff(left, right);
        }
        Ok(left)
    }

    fn implies(&mut self) -> Result<Formula> {
        let left = self.or()?;
        if self.peek() == Some(&Token::Arrow) {
            self.advance();
            let right = self.implies()?;
            Ok(implies(left, right))
        } else {
            Ok(left)
        }
    }

    fn or(&mut self) -> Result<Formula> {
        let mut left = self.and()?;
        loop {
            match self.peek() {
                Some(Token::Pipe) => {
                    self.advance();
                }
                Some(Token::Ident(n)) if n == "or" => {
                    self.advance();
                }
                _ => break,
            }
            let right = self.and()?;
            left = or(left, right);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Formula> {
        let mut left = self.unary()?;
        loop {
            match self.peek() {
                Some(Token::Amp) => {
                    self.advance();
                }
                Some(Token::Ident(n)) if n == "and" => {
                    self.advance();
                }
                _ => break,
            }
            let right = self.unary()?;
            left = and(left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Formula> {
        match self.peek() {
            Some(Token::Tilde) => {
                self.advance();
                Ok(not(self.unary()?))
            }
            Some(Token::Ident(n)) if n == "not" => {
                self.advance();
                Ok(not(self.unary()?))
            }
            Some(Token::Ident(n)) if n == "forall" || n == "exists" => self.formula(),
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Formula> {
        let offset = self.offset();
        match self.advance() {
            Some(Token::LParen) => {
                let f = self.formula()?;
                self.expect(&Token::RParen)?;
                Ok(f)
            }
            Some(Token::Ident(name)) if name == "true" => Ok(Formula::True),
            Some(Token::Ident(name)) if name == "false" => Ok(Formula::False),
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    // relation atom
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.term()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    let rel = self.vocab.relation(&name, args.len())?;
                    Ok(atom_r(rel, args))
                } else {
                    // bare identifier in formula position: variable in an
                    // (in)equality such as `x = y`.
                    let left = Term::Var(self.variable(&name));
                    self.equality_tail(left, offset)
                }
            }
            Some(Token::Number(n)) => {
                let left = Term::Const(kbt_data::Const::new(n));
                self.equality_tail(left, offset)
            }
            Some(Token::Quoted(name)) => {
                let left = Term::Const(self.vocab.constant(&name));
                self.equality_tail(left, offset)
            }
            other => Err(LogicError::Parse {
                message: format!("expected a formula, found {other:?}"),
                offset,
            }),
        }
    }

    fn equality_tail(&mut self, left: Term, offset: usize) -> Result<Formula> {
        match self.advance() {
            Some(Token::Eq) => Ok(eq(left, self.term()?)),
            Some(Token::Neq) => Ok(not(eq(left, self.term()?))),
            other => Err(LogicError::Parse {
                message: format!("expected '=' or '!=' after a term, found {other:?}"),
                offset,
            }),
        }
    }

    fn term(&mut self) -> Result<Term> {
        let offset = self.offset();
        match self.advance() {
            Some(Token::Ident(name)) => Ok(Term::Var(self.variable(&name))),
            Some(Token::Number(n)) => Ok(Term::Const(kbt_data::Const::new(n))),
            Some(Token::Quoted(name)) => Ok(Term::Const(self.vocab.constant(&name))),
            other => Err(LogicError::Parse {
                message: format!("expected a term, found {other:?}"),
                offset,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::pretty::render;

    fn parse(input: &str) -> Formula {
        let mut v = Vocabulary::new();
        parse_formula(input, &mut v).unwrap()
    }

    #[test]
    fn parses_transitive_closure_sentence() {
        let mut v = Vocabulary::new();
        let f = parse_formula(
            "forall x1 x2 x3. (R2(x1, x2) & R1(x2, x3)) | R1(x1, x3) -> R2(x1, x3)",
            &mut v,
        )
        .unwrap();
        // R2 was seen first, so it gets RelId 0; R1 gets RelId 1.
        let (r2, _) = v.lookup_relation("R2").unwrap();
        let (r1, _) = v.lookup_relation("R1").unwrap();
        let expected = forall(
            [1, 2, 3],
            implies(
                or(
                    and(atom_r(r2, [var(1), var(2)]), atom_r(r1, [var(2), var(3)])),
                    atom_r(r1, [var(1), var(3)]),
                ),
                atom_r(r2, [var(1), var(3)]),
            ),
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn precedence_and_associativity() {
        // a & b | c  ==  (a & b) | c
        let f = parse("R1() & R2() | R3()");
        assert!(matches!(f, Formula::Or(_, _)));
        // a -> b -> c  ==  a -> (b -> c)
        let f = parse("R1() -> R2() -> R3()");
        match f {
            Formula::Implies(_, rhs) => assert!(matches!(*rhs, Formula::Implies(_, _))),
            other => panic!("expected implication, got {other:?}"),
        }
    }

    #[test]
    fn equality_disequality_and_constants() {
        let mut v = Vocabulary::new();
        let f = parse_formula("forall x. x != 3 -> R(x, 'Toronto')", &mut v).unwrap();
        let toronto = v.lookup_constant("Toronto").unwrap();
        let (r, arity) = v.lookup_relation("R").unwrap();
        assert_eq!(arity, 2);
        let expected = forall(
            [0],
            implies(
                not(eq(Term::Var(Var::new(0)), cst(3))),
                atom_r(r, [Term::Var(Var::new(0)), Term::Const(toronto)]),
            ),
        );
        assert_eq!(f, expected);
    }

    #[test]
    fn keyword_connectives_and_not() {
        let f = parse("not R1() and R2() or R3()");
        // not binds tightest: ((~R1 & R2) | R3)
        assert!(matches!(f, Formula::Or(_, _)));
        let g = parse("~(R1() & R2())");
        assert!(matches!(g, Formula::Not(_)));
    }

    #[test]
    fn quantifier_scopes_to_the_right() {
        let f = parse("exists x. R1(x) & R2(x)");
        match f {
            Formula::Exists(_, body) => assert!(matches!(*body, Formula::And(_, _))),
            other => panic!("expected exists, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let mut v = Vocabulary::new();
        let err = parse_formula("forall x. R1(x", &mut v).unwrap_err();
        assert!(matches!(err, LogicError::Parse { .. }));
        let err = parse_formula("R1() R2()", &mut v).unwrap_err();
        assert!(err.to_string().contains("trailing"));
        assert!(parse_formula("R1(x) @", &mut v).is_err());
        assert!(parse_formula("'unterminated", &mut v).is_err());
    }

    #[test]
    fn arity_is_registered_per_relation_name() {
        let mut v = Vocabulary::new();
        assert!(parse_formula("R(1, 2) & R(3)", &mut v).is_err());
    }

    #[test]
    fn pretty_printed_formulas_reparse_to_the_same_ast() {
        let cases = [
            "forall x1 x2 x3. (R2(x1, x2) & R1(x2, x3)) | R1(x1, x3) -> R2(x1, x3)",
            "exists x1. R1(x1) & ~R2(x1, x1)",
            "R1(1) <-> (R2(2) | x1 = 3)",
        ];
        for input in cases {
            let mut v1 = Vocabulary::new();
            let f1 = parse_formula(input, &mut v1).unwrap();
            let printed = render(&f1, None);
            let mut v2 = Vocabulary::new();
            let f2 = parse_formula(&printed, &mut v2).unwrap();
            // rendering uses R<i> names which re-intern to the same indices
            assert_eq!(render(&f2, None), printed, "round-trip failed for {input}");
        }
    }
}
