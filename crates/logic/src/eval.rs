//! Active-domain model checking — definitions (4)–(8) of the paper.
//!
//! The interpretation `db ⊨ φ` is defined when `σ(db)` dominates `σ(φ)`.
//! Quantifiers range over a finite domain `B`; following the proof of
//! Theorem 4.1 ("for the domain of variables B we have to take the constants
//! that appear in either the database or the formula") the default domain is
//! the *active domain* — every constant of the database plus every constant
//! of the formula.  The `µ` function of `kbt-core` evaluates many candidate
//! databases against one fixed domain, so a variant with an explicit domain
//! is provided as well.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use kbt_data::{Const, Database, Tuple};

use crate::error::LogicError;
use crate::formula::Formula;
use crate::sentence::Sentence;
use crate::term::{Term, Var};
use crate::Result;

/// A variable assignment used during evaluation.
pub type Interpretation = BTreeMap<Var, Const>;

/// Whether `db ⊨ φ` with quantifiers ranging over the active domain of `db`
/// and `φ`.
pub fn satisfies(db: &Database, sentence: &Sentence) -> Result<bool> {
    let mut domain = db.constants();
    domain.extend(sentence.constants());
    satisfies_with_domain(db, sentence, &domain)
}

/// Whether `db ⊨ φ` with quantifiers ranging over the given finite domain.
///
/// The formula's schema must be dominated by the database's schema (every
/// relation of `φ` must exist in `db`, with the same arity); this mirrors
/// the definedness condition of the paper's interpretation relation.
pub fn satisfies_with_domain(
    db: &Database,
    sentence: &Sentence,
    domain: &BTreeSet<Const>,
) -> Result<bool> {
    // definedness check: σ(db) dominates σ(φ)
    for (rel, arity) in sentence.schema().iter() {
        match db.relation(rel) {
            None => {
                return Err(LogicError::Data(kbt_data::DataError::SchemaNotDominated {
                    base: sentence.schema(),
                    candidate: db.schema(),
                }))
            }
            Some(r) if r.arity() != arity => {
                return Err(LogicError::ArityMismatchWithDatabase {
                    rel,
                    in_database: r.arity(),
                    in_formula: arity,
                })
            }
            Some(_) => {}
        }
    }
    let mut env = Interpretation::new();
    Ok(eval(db, sentence.formula(), domain, &mut env))
}

/// Evaluates an (possibly open) formula under an assignment.  Unassigned free
/// variables cause a panic; callers must bind every free variable.
pub fn eval_formula(
    db: &Database,
    formula: &Formula,
    domain: &BTreeSet<Const>,
    env: &Interpretation,
) -> bool {
    let mut env = env.clone();
    eval(db, formula, domain, &mut env)
}

fn term_value(t: &Term, env: &Interpretation) -> Const {
    match t {
        Term::Const(c) => *c,
        Term::Var(v) => *env
            .get(v)
            .unwrap_or_else(|| panic!("unbound variable {v} during evaluation")),
    }
}

fn eval(db: &Database, f: &Formula, domain: &BTreeSet<Const>, env: &mut Interpretation) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        // (4): db ⊨ a_i = a_j iff i = j
        Formula::Eq(a, b) => term_value(a, env) == term_value(b, env),
        // (5): db ⊨ R_i(x̄) iff x̄ ∈ r_i
        Formula::Atom(rel, args) => {
            let t = Tuple::new(args.iter().map(|a| term_value(a, env)).collect::<Vec<_>>());
            db.holds(*rel, &t)
        }
        // (6): conjunction
        Formula::And(a, b) => eval(db, a, domain, env) && eval(db, b, domain, env),
        Formula::Or(a, b) => eval(db, a, domain, env) || eval(db, b, domain, env),
        Formula::Implies(a, b) => !eval(db, a, domain, env) || eval(db, b, domain, env),
        Formula::Iff(a, b) => eval(db, a, domain, env) == eval(db, b, domain, env),
        // (7): negation
        Formula::Not(inner) => !eval(db, inner, domain, env),
        // (8): existential quantification over the finite domain
        Formula::Exists(v, inner) => {
            let saved = env.get(v).copied();
            let mut holds = false;
            for &c in domain {
                env.insert(*v, c);
                if eval(db, inner, domain, env) {
                    holds = true;
                    break;
                }
            }
            restore(env, *v, saved);
            holds
        }
        Formula::Forall(v, inner) => {
            let saved = env.get(v).copied();
            let mut holds = true;
            for &c in domain {
                env.insert(*v, c);
                if !eval(db, inner, domain, env) {
                    holds = false;
                    break;
                }
            }
            restore(env, *v, saved);
            holds
        }
    }
}

fn restore(env: &mut Interpretation, v: Var, saved: Option<Const>) {
    match saved {
        Some(c) => {
            env.insert(v, c);
        }
        None => {
            env.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use kbt_data::{DatabaseBuilder, RelId};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn edge_db(edges: &[(u32, u32)]) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for &(x, y) in edges {
            b = b.fact(r(1), [x, y]);
        }
        b.build().unwrap()
    }

    #[test]
    fn atoms_follow_closed_world() {
        let db = edge_db(&[(1, 2)]);
        let holds = Sentence::new(atom(1, [cst(1), cst(2)])).unwrap();
        let missing = Sentence::new(atom(1, [cst(2), cst(1)])).unwrap();
        assert!(satisfies(&db, &holds).unwrap());
        assert!(!satisfies(&db, &missing).unwrap());
    }

    #[test]
    fn equality_is_identity_of_constants() {
        let db = edge_db(&[(1, 2)]);
        assert!(satisfies(&db, &Sentence::new(eq(cst(3), cst(3))).unwrap()).unwrap());
        assert!(!satisfies(&db, &Sentence::new(eq(cst(3), cst(4))).unwrap()).unwrap());
    }

    #[test]
    fn quantifiers_range_over_active_domain() {
        let db = edge_db(&[(1, 2), (2, 3)]);
        // ∃x ∃y R(x,y) ∧ R(y, ?) — there is a path of length 2
        let two_path = Sentence::new(exists(
            [1, 2, 3],
            and(atom(1, [var(1), var(2)]), atom(1, [var(2), var(3)])),
        ))
        .unwrap();
        assert!(satisfies(&db, &two_path).unwrap());

        // ∀x ∃y R(x,y) — fails because 3 has no successor
        let total = Sentence::new(forall([1], exists([2], atom(1, [var(1), var(2)])))).unwrap();
        assert!(!satisfies(&db, &total).unwrap());
    }

    #[test]
    fn formula_constants_extend_the_domain() {
        // db = {R(1,1)}; ∃x (x = a9) is true because a9 appears in the formula.
        let db = edge_db(&[(1, 1)]);
        let s = Sentence::new(exists([1], eq(var(1), cst(9)))).unwrap();
        assert!(satisfies(&db, &s).unwrap());
    }

    #[test]
    fn explicit_domain_is_respected() {
        let db = edge_db(&[(1, 2)]);
        let s = Sentence::new(exists([1], eq(var(1), cst(7)))).unwrap();
        let small: BTreeSet<Const> = [Const::new(1), Const::new(2)].into_iter().collect();
        let big: BTreeSet<Const> = [Const::new(1), Const::new(2), Const::new(7)]
            .into_iter()
            .collect();
        assert!(!satisfies_with_domain(&db, &s, &small).unwrap());
        assert!(satisfies_with_domain(&db, &s, &big).unwrap());
    }

    #[test]
    fn undefined_when_schema_not_dominated() {
        let db = edge_db(&[(1, 2)]);
        let s = Sentence::new(atom(9, [cst(1)])).unwrap();
        assert!(satisfies(&db, &s).is_err());
        // arity clash between formula and database
        let s = Sentence::new(atom(1, [cst(1)])).unwrap();
        assert!(satisfies(&db, &s).is_err());
    }

    #[test]
    fn transitive_closure_sentence_holds_exactly_when_r2_is_closed() {
        // φ = ∀x1x2x3 : (R2(x1,x2) ∧ R1(x2,x3)) ∨ R1(x1,x3) → R2(x1,x3)
        let phi = Sentence::new(forall(
            [1, 2, 3],
            implies(
                or(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(1, [var(1), var(3)]),
                ),
                atom(2, [var(1), var(3)]),
            ),
        ))
        .unwrap();

        // R1 = {(1,2),(2,3)}; R2 = transitive closure => satisfied
        let mut good = edge_db(&[(1, 2), (2, 3)]);
        good.insert_fact(r(2), kbt_data::tuple![1, 2]).unwrap();
        good.insert_fact(r(2), kbt_data::tuple![2, 3]).unwrap();
        good.insert_fact(r(2), kbt_data::tuple![1, 3]).unwrap();
        assert!(satisfies(&good, &phi).unwrap());

        // R2 missing (1,3) => not satisfied
        let mut bad = edge_db(&[(1, 2), (2, 3)]);
        bad.insert_fact(r(2), kbt_data::tuple![1, 2]).unwrap();
        bad.insert_fact(r(2), kbt_data::tuple![2, 3]).unwrap();
        assert!(!satisfies(&bad, &phi).unwrap());
    }
}
