//! Sentences: closed formulas, the set `Φ` of the paper.

use std::fmt;

use kbt_data::Schema;

use crate::error::LogicError;
use crate::formula::Formula;
use crate::vars::{check_arities, free_variables};
use crate::Result;

/// A sentence: a well-formed formula with no free variables and consistent
/// relation arities.  Only sentences may be inserted into a knowledgebase by
/// the `τ` operator.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sentence {
    formula: Formula,
}

impl Sentence {
    /// Wraps a formula, checking closedness and arity consistency.
    pub fn new(formula: Formula) -> Result<Self> {
        let free = free_variables(&formula);
        if let Some(&v) = free.iter().next() {
            return Err(LogicError::FreeVariable { var: v });
        }
        check_arities(&formula)?;
        Ok(Sentence { formula })
    }

    /// The underlying formula.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// Consumes the sentence, returning the formula.
    pub fn into_formula(self) -> Formula {
        self.formula
    }

    /// The schema `σ(φ)` of the sentence.
    pub fn schema(&self) -> Schema {
        self.formula.schema()
    }

    /// All constants mentioned in the sentence.
    pub fn constants(&self) -> std::collections::BTreeSet<kbt_data::Const> {
        self.formula.constants()
    }

    /// Formula length `|φ|`.
    pub fn size(&self) -> usize {
        self.formula.size()
    }

    /// The conjunction of two sentences (used for inserting a *group* of
    /// sentences at once, cf. the discussion of flock semantics in
    /// Section 2.1).
    pub fn and(self, other: Sentence) -> Sentence {
        Sentence {
            formula: Formula::And(Box::new(self.formula), Box::new(other.formula)),
        }
    }

    /// The conjunction of several sentences.
    pub fn conjoin(sentences: impl IntoIterator<Item = Sentence>) -> Sentence {
        let mut iter = sentences.into_iter();
        match iter.next() {
            None => Sentence {
                formula: Formula::True,
            },
            Some(first) => iter.fold(first, Sentence::and),
        }
    }
}

impl fmt::Debug for Sentence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.formula)
    }
}

impl fmt::Display for Sentence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl TryFrom<Formula> for Sentence {
    type Error = LogicError;

    fn try_from(f: Formula) -> Result<Self> {
        Sentence::new(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn open_formulas_are_rejected() {
        assert!(Sentence::new(atom(1, [var(1)])).is_err());
        assert!(Sentence::new(forall([1], atom(1, [var(1)]))).is_ok());
    }

    #[test]
    fn inconsistent_arities_are_rejected() {
        let f = forall([1], and(atom(1, [var(1)]), atom(1, [var(1), var(1)])));
        assert!(Sentence::new(f).is_err());
    }

    #[test]
    fn conjoin_groups_of_sentences() {
        let s1 = Sentence::new(forall([1], implies(atom(1, [var(1)]), atom(2, [var(1)])))).unwrap();
        let s2 = Sentence::new(atom(3, [cst(1)])).unwrap();
        let c = Sentence::conjoin([s1.clone(), s2.clone()]);
        assert_eq!(c.schema().len(), 3);
        assert_eq!(Sentence::conjoin([]).formula(), &Formula::True);
        assert_eq!(Sentence::conjoin([s2.clone()]), s2);
    }
}
