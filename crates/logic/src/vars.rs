//! Free variables, substitution and arity checking.

use std::collections::BTreeSet;

use kbt_data::Const;

use crate::error::LogicError;
use crate::formula::Formula;
use crate::term::{Term, Var};
use crate::Result;

/// The free variables of a formula.
pub fn free_variables(f: &Formula) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    collect_free(f, &mut BTreeSet::new(), &mut out);
    out
}

fn collect_free(f: &Formula, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom(_, args) => {
            for t in args {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            }
        }
        Formula::Eq(a, b) => {
            for t in [a, b] {
                if let Term::Var(v) = t {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            }
        }
        Formula::Not(inner) => collect_free(inner, bound, out),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            collect_free(a, bound, out);
            collect_free(b, bound, out);
        }
        Formula::Exists(v, inner) | Formula::Forall(v, inner) => {
            let fresh = bound.insert(*v);
            collect_free(inner, bound, out);
            if fresh {
                bound.remove(v);
            }
        }
    }
}

/// Whether the formula is a sentence (no free variables).
pub fn is_sentence(f: &Formula) -> bool {
    free_variables(f).is_empty()
}

/// `φ(x_i / a_j)`: substitutes the constant `value` for every *free*
/// occurrence of `v` (the substitution used in definition (8) of the paper).
pub fn substitute(f: &Formula, v: Var, value: Const) -> Formula {
    let subst_term = |t: &Term| -> Term {
        match t {
            Term::Var(w) if *w == v => Term::Const(value),
            other => *other,
        }
    };
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(r, args) => Formula::Atom(*r, args.iter().map(subst_term).collect()),
        Formula::Eq(a, b) => Formula::Eq(subst_term(a), subst_term(b)),
        Formula::Not(inner) => Formula::Not(Box::new(substitute(inner, v, value))),
        Formula::And(a, b) => Formula::And(
            Box::new(substitute(a, v, value)),
            Box::new(substitute(b, v, value)),
        ),
        Formula::Or(a, b) => Formula::Or(
            Box::new(substitute(a, v, value)),
            Box::new(substitute(b, v, value)),
        ),
        Formula::Implies(a, b) => Formula::Implies(
            Box::new(substitute(a, v, value)),
            Box::new(substitute(b, v, value)),
        ),
        Formula::Iff(a, b) => Formula::Iff(
            Box::new(substitute(a, v, value)),
            Box::new(substitute(b, v, value)),
        ),
        Formula::Exists(w, inner) if *w == v => Formula::Exists(*w, inner.clone()),
        Formula::Forall(w, inner) if *w == v => Formula::Forall(*w, inner.clone()),
        Formula::Exists(w, inner) => Formula::Exists(*w, Box::new(substitute(inner, v, value))),
        Formula::Forall(w, inner) => Formula::Forall(*w, Box::new(substitute(inner, v, value))),
    }
}

/// Checks that every relation symbol is used with a single arity throughout
/// the formula, returning the offending symbol otherwise.
pub fn check_arities(f: &Formula) -> Result<()> {
    let mut seen: std::collections::BTreeMap<kbt_data::RelId, usize> =
        std::collections::BTreeMap::new();
    let mut conflict = None;
    f.visit_atoms(&mut |rel, args| {
        match seen.get(&rel) {
            Some(&a) if a != args.len() && conflict.is_none() => {
                conflict = Some((rel, a, args.len()));
            }
            _ => {
                seen.entry(rel).or_insert(args.len());
            }
        };
    });
    match conflict {
        Some((rel, expected, found)) => Err(LogicError::InconsistentArity {
            rel,
            expected,
            found,
        }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn free_variables_respect_binders() {
        // ∃x1 R(x1, x2) — only x2 is free.
        let f = exists([1], atom(1, [var(1), var(2)]));
        let fv: Vec<_> = free_variables(&f).into_iter().collect();
        assert_eq!(fv, vec![Var::new(2)]);
        assert!(!is_sentence(&f));
        assert!(is_sentence(&forall([2], f)));
    }

    #[test]
    fn shadowing_binder_keeps_outer_occurrences_free() {
        // R(x1) ∧ ∃x1 S(x1): the first occurrence of x1 is free.
        let f = and(atom(1, [var(1)]), exists([1], atom(2, [var(1)])));
        assert_eq!(free_variables(&f).len(), 1);
    }

    #[test]
    fn substitution_only_touches_free_occurrences() {
        let f = and(atom(1, [var(1)]), exists([1], atom(2, [var(1)])));
        let g = substitute(&f, Var::new(1), Const::new(9));
        assert_eq!(g, and(atom(1, [cst(9)]), exists([1], atom(2, [var(1)]))));
    }

    #[test]
    fn substitution_under_other_binders() {
        let f = forall([2], atom(1, [var(1), var(2)]));
        let g = substitute(&f, Var::new(1), Const::new(5));
        assert_eq!(g, forall([2], atom(1, [cst(5), var(2)])));
    }

    #[test]
    fn arity_check_detects_conflicts() {
        let ok = and(atom(1, [var(1), var(2)]), atom(1, [cst(1), cst(2)]));
        assert!(check_arities(&ok).is_ok());
        let bad = and(atom(1, [var(1), var(2)]), atom(1, [cst(1)]));
        assert!(check_arities(&bad).is_err());
    }
}
