//! Pretty-printing of formulas, optionally through a named vocabulary.

use kbt_data::Vocabulary;

use crate::formula::Formula;
use crate::term::Term;

/// Renders a formula as text.  When a vocabulary is supplied, relation and
/// constant names registered there are used; otherwise the `R_i` / `a_i`
/// fallback notation of the paper is used.  The output is re-parseable by
/// [`crate::parser::parse_formula`] when a vocabulary is used consistently,
/// and re-parsing yields the *same AST* — `parse(pretty(φ)) == φ` is
/// enforced exhaustively (small depths) and by proptest (deep formulas) in
/// `tests/roundtrip.rs`; the `kbt-service` wire format depends on it.
///
/// Caveat: the identity assumes vocabulary names do not collide with the
/// grammar's keywords (`not`, `and`, `or`, `forall`, `exists`, `true`,
/// `false`) — such names cannot be produced *through* the parser (it
/// claims those tokens first), but a vocabulary built programmatically
/// could contain them, and a relation literally named `not` would render
/// as `not(…)` and re-parse as a negation.
pub fn render(f: &Formula, vocab: Option<&Vocabulary>) -> String {
    let mut out = String::new();
    write_formula(f, vocab, 0, &mut out);
    out
}

fn render_term(t: &Term, vocab: Option<&Vocabulary>) -> String {
    match t {
        Term::Var(v) => format!("x{}", v.index()),
        Term::Const(c) => match vocab.and_then(|v| v.constant_name(*c)) {
            Some(name) => format!("'{name}'"),
            None => format!("{}", c.index()),
        },
    }
}

fn render_rel(r: kbt_data::RelId, vocab: Option<&Vocabulary>) -> String {
    match vocab.and_then(|v| v.relation_name(r)) {
        Some(name) => name.to_string(),
        None => format!("R{}", r.index()),
    }
}

/// Precedence levels: 0 = iff, 1 = implies, 2 = or, 3 = and, 4 = unary.
fn write_formula(f: &Formula, vocab: Option<&Vocabulary>, prec: u8, out: &mut String) {
    let own = precedence(f);
    let need_parens = own < prec;
    if need_parens {
        out.push('(');
    }
    match f {
        Formula::True => out.push_str("true"),
        Formula::False => out.push_str("false"),
        Formula::Atom(r, args) => {
            out.push_str(&render_rel(*r, vocab));
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&render_term(a, vocab));
            }
            out.push(')');
        }
        Formula::Eq(a, b) => {
            out.push_str(&render_term(a, vocab));
            out.push_str(" = ");
            out.push_str(&render_term(b, vocab));
        }
        Formula::Not(inner) => {
            out.push('~');
            write_formula(inner, vocab, 5, out);
        }
        Formula::And(a, b) => {
            write_formula(a, vocab, 3, out);
            out.push_str(" & ");
            write_formula(b, vocab, 4, out);
        }
        Formula::Or(a, b) => {
            write_formula(a, vocab, 2, out);
            out.push_str(" | ");
            write_formula(b, vocab, 3, out);
        }
        Formula::Implies(a, b) => {
            write_formula(a, vocab, 2, out);
            out.push_str(" -> ");
            write_formula(b, vocab, 1, out);
        }
        Formula::Iff(a, b) => {
            write_formula(a, vocab, 1, out);
            out.push_str(" <-> ");
            write_formula(b, vocab, 1, out);
        }
        Formula::Exists(v, inner) => {
            out.push_str(&format!("exists x{}", v.index()));
            let mut body = inner.as_ref();
            while let Formula::Exists(v2, next) = body {
                out.push_str(&format!(" x{}", v2.index()));
                body = next;
            }
            out.push_str(". ");
            write_formula(body, vocab, 0, out);
        }
        Formula::Forall(v, inner) => {
            out.push_str(&format!("forall x{}", v.index()));
            let mut body = inner.as_ref();
            while let Formula::Forall(v2, next) = body {
                out.push_str(&format!(" x{}", v2.index()));
                body = next;
            }
            out.push_str(". ");
            write_formula(body, vocab, 0, out);
        }
    }
    if need_parens {
        out.push(')');
    }
}

fn precedence(f: &Formula) -> u8 {
    match f {
        Formula::Iff(_, _) => 0,
        Formula::Implies(_, _) => 1,
        Formula::Or(_, _) => 2,
        Formula::And(_, _) => 3,
        Formula::Exists(_, _) | Formula::Forall(_, _) => 0,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn renders_quantifier_blocks_compactly() {
        let f = forall(
            [1, 2, 3],
            implies(
                and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                atom(2, [var(1), var(3)]),
            ),
        );
        let s = render(&f, None);
        assert!(s.starts_with("forall x1 x2 x3. "));
        assert!(s.contains("R2(x1, x2) & R1(x2, x3) -> R2(x1, x3)"));
    }

    #[test]
    fn uses_vocabulary_names_when_present() {
        let mut v = Vocabulary::new();
        let flight = v.relation("flight", 2).unwrap();
        let toronto = v.constant("Toronto");
        let f = atom_r(flight, [Term::Const(toronto), var(1)]);
        assert_eq!(render(&f, Some(&v)), "flight('Toronto', x1)");
    }

    #[test]
    fn parenthesises_by_precedence() {
        let f = and(or(atom(1, [cst(1)]), atom(2, [cst(2)])), atom(3, [cst(3)]));
        assert_eq!(render(&f, None), "(R1(1) | R2(2)) & R3(3)");
        let g = or(and(atom(1, [cst(1)]), atom(2, [cst(2)])), atom(3, [cst(3)]));
        assert_eq!(render(&g, None), "R1(1) & R2(2) | R3(3)");
    }
}
