//! Error types for the logic substrate.

use std::fmt;

use kbt_data::RelId;

use crate::term::Var;

/// Errors produced while building, parsing or evaluating formulas.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogicError {
    /// A formula expected to be a sentence has a free variable.
    FreeVariable {
        /// One of the free variables.
        var: Var,
    },
    /// A relation symbol is used with two different arities in one formula.
    InconsistentArity {
        /// The offending relation symbol.
        rel: RelId,
        /// The arity of the first occurrence.
        expected: usize,
        /// The conflicting arity.
        found: usize,
    },
    /// A formula mentions a relation with an arity that conflicts with the
    /// database it is evaluated against.
    ArityMismatchWithDatabase {
        /// The offending relation symbol.
        rel: RelId,
        /// Arity in the database.
        in_database: usize,
        /// Arity in the formula.
        in_formula: usize,
    },
    /// Parse error with a human-readable message and byte offset.
    Parse {
        /// Description of what went wrong.
        message: String,
        /// Byte offset into the input where the error was detected.
        offset: usize,
    },
    /// An error bubbled up from the relational substrate.
    Data(kbt_data::DataError),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::FreeVariable { var } => {
                write!(f, "formula is not a sentence: variable {var} occurs free")
            }
            LogicError::InconsistentArity {
                rel,
                expected,
                found,
            } => write!(
                f,
                "relation {rel} used with arities {expected} and {found} in the same formula"
            ),
            LogicError::ArityMismatchWithDatabase {
                rel,
                in_database,
                in_formula,
            } => write!(
                f,
                "relation {rel} has arity {in_database} in the database but {in_formula} in the formula"
            ),
            LogicError::Parse { message, offset } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            LogicError::Data(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LogicError {}

impl From<kbt_data::DataError> for LogicError {
    fn from(e: kbt_data::DataError) -> Self {
        LogicError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_culprit() {
        let e = LogicError::FreeVariable { var: Var::new(4) };
        assert!(e.to_string().contains("x4"));
        let e = LogicError::Parse {
            message: "expected ')'".into(),
            offset: 12,
        };
        assert!(e.to_string().contains("12"));
    }
}
