//! Ergonomic constructors for formulas.
//!
//! The paper's example sentences (Section 3) are long conjunctions of
//! universally quantified implications; these helpers keep their Rust
//! transcriptions close to the paper's notation:
//!
//! ```
//! use kbt_logic::*;
//!
//! // ∀x1 x2 x3 : (R2(x1,x2) ∧ R1(x2,x3)) ∨ R1(x1,x3) → R2(x1,x3)
//! let tc = forall(
//!     [1, 2, 3],
//!     implies(
//!         or(
//!             and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
//!             atom(1, [var(1), var(3)]),
//!         ),
//!         atom(2, [var(1), var(3)]),
//!     ),
//! );
//! assert_eq!(tc.quantifier_depth(), 3);
//! ```

use kbt_data::{Const, RelId};

use crate::formula::Formula;
use crate::term::{Term, Var};

/// A variable term `x_i`.
pub fn var(i: u32) -> Term {
    Term::Var(Var::new(i))
}

/// A constant term `a_i`.
pub fn cst(i: u32) -> Term {
    Term::Const(Const::new(i))
}

/// An atom `R_i(t̄)`.
pub fn atom(rel: u32, args: impl IntoIterator<Item = Term>) -> Formula {
    Formula::Atom(RelId::new(rel), args.into_iter().collect())
}

/// An atom over an explicit [`RelId`].
pub fn atom_r(rel: RelId, args: impl IntoIterator<Item = Term>) -> Formula {
    Formula::Atom(rel, args.into_iter().collect())
}

/// An equality `t1 = t2`.
pub fn eq(t1: Term, t2: Term) -> Formula {
    Formula::Eq(t1, t2)
}

/// A disequality `¬(t1 = t2)`.
pub fn neq(t1: Term, t2: Term) -> Formula {
    not(eq(t1, t2))
}

/// Negation `¬φ`.
pub fn not(f: Formula) -> Formula {
    Formula::Not(Box::new(f))
}

/// Conjunction `φ ∧ ψ`.
pub fn and(a: Formula, b: Formula) -> Formula {
    Formula::And(Box::new(a), Box::new(b))
}

/// Disjunction `φ ∨ ψ`.
pub fn or(a: Formula, b: Formula) -> Formula {
    Formula::Or(Box::new(a), Box::new(b))
}

/// Implication `φ → ψ`.
pub fn implies(a: Formula, b: Formula) -> Formula {
    Formula::Implies(Box::new(a), Box::new(b))
}

/// Biconditional `φ ↔ ψ`.
pub fn iff(a: Formula, b: Formula) -> Formula {
    Formula::Iff(Box::new(a), Box::new(b))
}

/// Conjunction of all formulas (the empty conjunction is `True`).
pub fn and_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
    let mut iter = fs.into_iter();
    match iter.next() {
        None => Formula::True,
        Some(first) => iter.fold(first, and),
    }
}

/// Disjunction of all formulas (the empty disjunction is `False`).
pub fn or_all(fs: impl IntoIterator<Item = Formula>) -> Formula {
    let mut iter = fs.into_iter();
    match iter.next() {
        None => Formula::False,
        Some(first) => iter.fold(first, or),
    }
}

/// Existential quantification over a block of variables `∃x_{i1} … x_{ik} φ`.
pub fn exists(vars: impl IntoIterator<Item = u32>, f: Formula) -> Formula {
    let vars: Vec<u32> = vars.into_iter().collect();
    vars.into_iter()
        .rev()
        .fold(f, |acc, v| Formula::Exists(Var::new(v), Box::new(acc)))
}

/// Universal quantification over a block of variables `∀x_{i1} … x_{ik} φ`.
pub fn forall(vars: impl IntoIterator<Item = u32>, f: Formula) -> Formula {
    let vars: Vec<u32> = vars.into_iter().collect();
    vars.into_iter()
        .rev()
        .fold(f, |acc, v| Formula::Forall(Var::new(v), Box::new(acc)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_quantifiers_nest_left_to_right() {
        let f = forall([1, 2], atom(1, [var(1), var(2)]));
        match f {
            Formula::Forall(v1, inner) => {
                assert_eq!(v1, Var::new(1));
                match *inner {
                    Formula::Forall(v2, _) => assert_eq!(v2, Var::new(2)),
                    other => panic!("expected nested forall, got {other:?}"),
                }
            }
            other => panic!("expected forall, got {other:?}"),
        }
    }

    #[test]
    fn and_all_and_or_all_handle_empty_and_singleton() {
        assert_eq!(and_all([]), Formula::True);
        assert_eq!(or_all([]), Formula::False);
        let a = atom(1, [var(1)]);
        assert_eq!(and_all([a.clone()]), a.clone());
        assert_eq!(or_all([a.clone()]), a);
    }

    #[test]
    fn neq_is_negated_equality() {
        assert_eq!(neq(var(1), cst(2)), not(eq(var(1), cst(2))));
    }
}
