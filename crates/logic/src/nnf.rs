//! Negation normal form.
//!
//! Pushing negations down to the atoms is used by the monotonicity check of
//! the update evaluator and keeps the grounded formulas passed to the SAT
//! substrate small and regular.

use crate::formula::Formula;

/// Rewrites a formula into negation normal form: negation applies only to
/// atoms and equalities, and the derived connectives `→` and `↔` are
/// eliminated.
pub fn to_nnf(f: &Formula) -> Formula {
    nnf(f, false)
}

fn nnf(f: &Formula, negated: bool) -> Formula {
    use Formula::*;
    match f {
        True => {
            if negated {
                False
            } else {
                True
            }
        }
        False => {
            if negated {
                True
            } else {
                False
            }
        }
        Atom(_, _) | Eq(_, _) => {
            if negated {
                Not(Box::new(f.clone()))
            } else {
                f.clone()
            }
        }
        Not(inner) => nnf(inner, !negated),
        And(a, b) => {
            let (la, lb) = (nnf(a, negated), nnf(b, negated));
            if negated {
                Or(Box::new(la), Box::new(lb))
            } else {
                And(Box::new(la), Box::new(lb))
            }
        }
        Or(a, b) => {
            let (la, lb) = (nnf(a, negated), nnf(b, negated));
            if negated {
                And(Box::new(la), Box::new(lb))
            } else {
                Or(Box::new(la), Box::new(lb))
            }
        }
        Implies(a, b) => {
            // a → b ≡ ¬a ∨ b
            let rewritten = Or(Box::new(Not(a.clone())), b.clone());
            nnf(&rewritten, negated)
        }
        Iff(a, b) => {
            // a ↔ b ≡ (a ∧ b) ∨ (¬a ∧ ¬b)
            let rewritten = Or(
                Box::new(And(a.clone(), b.clone())),
                Box::new(And(Box::new(Not(a.clone())), Box::new(Not(b.clone())))),
            );
            nnf(&rewritten, negated)
        }
        Exists(v, inner) => {
            let body = nnf(inner, negated);
            if negated {
                Forall(*v, Box::new(body))
            } else {
                Exists(*v, Box::new(body))
            }
        }
        Forall(v, inner) => {
            let body = nnf(inner, negated);
            if negated {
                Exists(*v, Box::new(body))
            } else {
                Forall(*v, Box::new(body))
            }
        }
    }
}

/// Whether a formula is in negation normal form.
pub fn is_nnf(f: &Formula) -> bool {
    use Formula::*;
    match f {
        True | False | Atom(_, _) | Eq(_, _) => true,
        Not(inner) => matches!(inner.as_ref(), Atom(_, _) | Eq(_, _)),
        And(a, b) | Or(a, b) => is_nnf(a) && is_nnf(b),
        Implies(_, _) | Iff(_, _) => false,
        Exists(_, inner) | Forall(_, inner) => is_nnf(inner),
    }
}

/// Whether every atom of the given relation occurs only positively in the NNF
/// of the formula — a sufficient condition for the insertion of the formula
/// to behave monotonically on that relation (cf. the least-fixpoint remark in
/// the introduction of the paper).
pub fn relation_occurs_only_positively(f: &Formula, rel: kbt_data::RelId) -> bool {
    fn check(f: &Formula, rel: kbt_data::RelId) -> bool {
        use Formula::*;
        match f {
            True | False | Eq(_, _) | Atom(_, _) => true,
            Not(inner) => match inner.as_ref() {
                Atom(r, _) => *r != rel,
                Eq(_, _) => true,
                _ => unreachable!("formula must be in NNF"),
            },
            And(a, b) | Or(a, b) => check(a, rel) && check(b, rel),
            Implies(_, _) | Iff(_, _) => unreachable!("formula must be in NNF"),
            Exists(_, inner) | Forall(_, inner) => check(inner, rel),
        }
    }
    check(&to_nnf(f), rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::eval::satisfies;
    use crate::sentence::Sentence;
    use kbt_data::{DatabaseBuilder, RelId};

    #[test]
    fn nnf_pushes_negation_to_atoms() {
        let f = not(and(
            atom(1, [var(1)]),
            or(atom(2, [var(1)]), not(atom(3, [var(1)]))),
        ));
        let g = to_nnf(&f);
        assert!(is_nnf(&g));
        assert_eq!(
            g,
            or(
                not(atom(1, [var(1)])),
                and(not(atom(2, [var(1)])), atom(3, [var(1)]))
            )
        );
    }

    #[test]
    fn nnf_dualises_quantifiers() {
        let f = not(forall([1], exists([2], atom(1, [var(1), var(2)]))));
        let g = to_nnf(&f);
        assert!(is_nnf(&g));
        assert_eq!(g, exists([1], forall([2], not(atom(1, [var(1), var(2)])))));
    }

    #[test]
    fn nnf_preserves_satisfaction() {
        let phi = forall(
            [1],
            implies(
                atom(1, [var(1), var(1)]),
                not(exists(
                    [2],
                    and(atom(1, [var(1), var(2)]), not(eq(var(1), var(2)))),
                )),
            ),
        );
        let s = Sentence::new(phi.clone()).unwrap();
        let s_nnf = Sentence::new(to_nnf(&phi)).unwrap();
        for edges in [
            vec![(1u32, 1u32)],
            vec![(1, 1), (1, 2)],
            vec![(1, 2), (2, 2)],
        ] {
            let mut b = DatabaseBuilder::new().relation(RelId::new(1), 2);
            for &(x, y) in &edges {
                b = b.fact(RelId::new(1), [x, y]);
            }
            let db = b.build().unwrap();
            assert_eq!(
                satisfies(&db, &s).unwrap(),
                satisfies(&db, &s_nnf).unwrap(),
                "NNF changed the meaning on {edges:?}"
            );
        }
    }

    #[test]
    fn positive_occurrence_check() {
        // R2 occurs only positively in the transitive-closure sentence.
        let tc = forall(
            [1, 2, 3],
            implies(
                or(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(1, [var(1), var(3)]),
                ),
                atom(2, [var(1), var(3)]),
            ),
        );
        // in ¬body ∨ head, R2 occurs negatively (in the body) and positively.
        assert!(!relation_occurs_only_positively(&tc, RelId::new(2)));
        // but R1 only occurs in the body, i.e. only negatively — and R3 not at all.
        assert!(relation_occurs_only_positively(&tc, RelId::new(3)));
        let simple = forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        );
        assert!(relation_occurs_only_positively(&simple, RelId::new(2)));
    }
}
