//! Variables and terms.

use kbt_data::Const;
use std::fmt;

/// A first-order variable `x_i`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Creates the variable `x_i`.
    pub const fn new(i: u32) -> Self {
        Var(i)
    }

    /// The index of the variable.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for Var {
    fn from(i: u32) -> Self {
        Var(i)
    }
}

/// A term: either a variable or a domain constant (the language is
/// function-free).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable occurrence.
    Var(Var),
    /// A constant occurrence.
    Const(Const),
}

impl Term {
    /// The variable inside, if this term is a variable.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if this term is a constant.
    pub fn as_const(self) -> Option<Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// Whether the term is a constant (i.e. ground).
    pub fn is_ground(self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Const> for Term {
    fn from(c: Const) -> Self {
        Term::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let v = Term::Var(Var::new(1));
        let c = Term::Const(Const::new(2));
        assert_eq!(v.as_var(), Some(Var::new(1)));
        assert_eq!(v.as_const(), None);
        assert_eq!(c.as_const(), Some(Const::new(2)));
        assert!(!v.is_ground());
        assert!(c.is_ground());
    }

    #[test]
    fn display() {
        assert_eq!(Term::Var(Var::new(3)).to_string(), "x3");
        assert_eq!(Term::Const(Const::new(3)).to_string(), "a3");
    }
}
