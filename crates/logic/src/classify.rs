//! Syntactic classification of sentences.
//!
//! Section 4.3 of the paper singles out two tractable special cases of the
//! transformation language: *quantifier-free* transformations (boolean
//! combinations of ground atomic formulas, Theorem 4.7) and
//! *Datalog-restricted* transformations (conjunctions of function-free Horn
//! clauses, Theorem 4.8).  The evaluator in `kbt-core` uses this module to
//! decide which fast path applies.

use crate::formula::Formula;
use crate::horn::horn_clauses;
use crate::sentence::Sentence;

/// The evaluation class a sentence falls into, in decreasing order of
/// tractability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FormulaClass {
    /// Conjunction of function-free Horn clauses (Datalog): PTIME data
    /// complexity via least-fixpoint evaluation (Theorem 4.8).
    Datalog,
    /// Boolean combination of ground atoms: PTIME data complexity
    /// (Theorem 4.7).
    QuantifierFree,
    /// Anything else: handled by the general minimal-model search, co-NP
    /// data complexity for a single insertion (Theorem 4.1).
    General,
}

/// Whether the formula contains no quantifiers.
pub fn is_quantifier_free(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => true,
        Formula::Not(inner) => is_quantifier_free(inner),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            is_quantifier_free(a) && is_quantifier_free(b)
        }
        Formula::Exists(_, _) | Formula::Forall(_, _) => false,
    }
}

/// Whether the formula is ground: no quantifiers and no variables at all
/// (every atom argument is a constant).  This is the "quantifier free"
/// fragment Θ₀ of Section 4.3.
pub fn is_ground(f: &Formula) -> bool {
    if !is_quantifier_free(f) {
        return false;
    }
    let mut ground = true;
    f.visit_terms(&mut |t| {
        if !t.is_ground() {
            ground = false;
        }
    });
    ground
}

/// Whether the formula is existential: built from atoms, equalities, `∧`,
/// `∨` and `∃` only (no negation, no `∀`, no implications).  Positive
/// existential sentences are the updates-with-multiple-results of
/// \[AbG85\] mentioned in the introduction.
pub fn is_existential(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False | Formula::Atom(_, _) | Formula::Eq(_, _) => true,
        Formula::And(a, b) | Formula::Or(a, b) => is_existential(a) && is_existential(b),
        Formula::Exists(_, inner) => is_existential(inner),
        Formula::Not(_) | Formula::Implies(_, _) | Formula::Iff(_, _) | Formula::Forall(_, _) => {
            false
        }
    }
}

/// Classifies a sentence into its evaluation class.
pub fn classify(sentence: &Sentence) -> FormulaClass {
    if horn_clauses(sentence).is_some() {
        FormulaClass::Datalog
    } else if is_ground(sentence.formula()) {
        FormulaClass::QuantifierFree
    } else {
        FormulaClass::General
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn ground_and_quantifier_free() {
        let g = and(atom(1, [cst(1), cst(2)]), not(atom(2, [cst(3)])));
        assert!(is_quantifier_free(&g));
        assert!(is_ground(&g));

        let open = atom(1, [var(1), cst(2)]);
        assert!(is_quantifier_free(&open));
        assert!(!is_ground(&open));

        let q = exists([1], atom(1, [var(1), cst(2)]));
        assert!(!is_quantifier_free(&q));
        assert!(!is_ground(&q));
    }

    #[test]
    fn existential_fragment() {
        let ok = exists([1, 2], or(atom(1, [var(1), var(2)]), eq(var(1), var(2))));
        assert!(is_existential(&ok));
        let with_neg = exists([1], not(atom(1, [var(1)])));
        assert!(!is_existential(&with_neg));
        let with_forall = forall([1], atom(1, [var(1)]));
        assert!(!is_existential(&with_forall));
    }

    #[test]
    fn classification_prefers_datalog_then_quantifier_free() {
        // Datalog: ∀x,y,z (R2(x,y) ∧ R1(y,z) → R2(x,z)) ∧ ∀x,y (R1(x,y) → R2(x,y))
        let datalog = Sentence::new(and(
            forall(
                [1, 2, 3],
                implies(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(2, [var(1), var(3)]),
                ),
            ),
            forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
            ),
        ))
        .unwrap();
        assert_eq!(classify(&datalog), FormulaClass::Datalog);

        let ground = Sentence::new(or(atom(1, [cst(1)]), not(atom(1, [cst(2)])))).unwrap();
        assert_eq!(classify(&ground), FormulaClass::QuantifierFree);

        let general =
            Sentence::new(forall([1], exists([2], not(atom(1, [var(1), var(2)]))))).unwrap();
        assert_eq!(classify(&general), FormulaClass::General);
    }
}
