//! # kbt-par — a dependency-free scoped thread pool
//!
//! The fixpoint engine wants to fan the independent derivations of a
//! semi-naive round out across cores.  The usual answer is `rayon`, but this
//! repository builds offline (no crates.io), so — like `vendor/rand` and
//! `vendor/criterion` — the thread pool is vendored in-workspace.  It is
//! deliberately small: fixed OS worker threads, one shared FIFO of jobs per
//! [`scope`](ThreadPool::scope), and nothing speculative (no work *stealing*,
//! no per-worker deques, no latency tricks).  Callers split their work into
//! chunks; idle workers *share* the chunk queue and pull the next one.
//!
//! ## Design
//!
//! * **Pool** — [`ThreadPool`] owns helper threads that sleep on a condvar
//!   until a scope is installed.  [`ThreadPool::global`] is the process-wide
//!   instance the engine uses; it grows its worker set on demand so an
//!   explicit `threads = 4` request is honoured even when
//!   `available_parallelism` reports fewer cores (the OS timeslices — the
//!   callers' *determinism* never depends on the physical core count).
//! * **Scope** — [`ThreadPool::scope`] mirrors `std::thread::scope`: jobs
//!   spawned inside may borrow from the caller's stack, because `scope` does
//!   not return until every job has finished and every helper has detached.
//!   The scope body runs on the calling thread, which also participates in
//!   draining the job queue (a `width` of `n` means the caller plus at most
//!   `n - 1` helpers).
//! * **Work sharing** — [`Scope::spawn`] pushes one job; helpers and the
//!   caller pop jobs FIFO.  [`ThreadPool::map`] / [`ThreadPool::for_each_chunk`]
//!   build the common shapes on top: per-item results collected *in item
//!   order* (so reductions over them are deterministic regardless of which
//!   worker ran what), and chunked iteration over a slice.
//! * **Panic propagation** — a job that panics does not tear down the pool:
//!   the first payload is captured, the remaining jobs still run, and the
//!   payload is re-raised on the calling thread when the scope closes (after
//!   all helpers have detached, so no job ever outlives borrowed data).  A
//!   panic in the scope *body* likewise waits for in-flight jobs, drops the
//!   not-yet-started ones, and then resumes unwinding.
//!
//! ## Determinism contract
//!
//! The pool itself guarantees only that `map` returns results in item order
//! and that `scope` joins everything.  The engine builds byte-identical
//! fixpoints on top by giving every worker a *private* derivation buffer and
//! merging the buffers in stable task order — worker interleaving can then
//! never reach the output.  See `kbt_engine::eval` for that merge.
//!
//! ## Thread-count configuration
//!
//! [`default_threads`] is the process-wide default width: the
//! `KBT_THREADS` environment variable when set (the CI matrix pins it to
//! `1` and `4`), otherwise [`std::thread::available_parallelism`].  A width
//! of `1` never touches the pool at all — callers run their exact
//! sequential path.

mod pool;

pub use pool::{chunk_size, Scope, ThreadPool};

use std::sync::OnceLock;

/// The process-wide default evaluation width: `KBT_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`] (and
/// `1` if even that is unavailable).  Read once and cached.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("KBT_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Resolves a caller-supplied thread count: `0` means "use the default"
/// ([`default_threads`]), anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive_and_stable() {
        let d = default_threads();
        assert!(d >= 1);
        assert_eq!(d, default_threads());
    }

    #[test]
    fn resolve_threads_maps_zero_to_default() {
        assert_eq!(resolve_threads(0), default_threads());
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }
}
