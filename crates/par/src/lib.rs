//! # kbt-par — a std-only scoped thread pool
//!
//! The fixpoint engine wants to fan the independent derivations of a
//! semi-naive round out across cores.  The usual answer is `rayon`, but this
//! repository builds offline (no crates.io), so — like `vendor/rand` and
//! `vendor/criterion` — the thread pool is vendored in-workspace.  It is
//! deliberately small: fixed OS worker threads, one shared FIFO of jobs per
//! [`scope`](ThreadPool::scope), and nothing speculative (no work *stealing*,
//! no per-worker deques, no latency tricks).  Callers split their work into
//! chunks; idle workers *share* the chunk queue and pull the next one.
//!
//! ## Design
//!
//! * **Pool** — [`ThreadPool`] owns helper threads that sleep on a condvar
//!   until a scope is installed.  [`ThreadPool::global`] is the process-wide
//!   instance the engine uses; it grows its worker set on demand so an
//!   explicit `threads = 4` request is honoured even when
//!   `available_parallelism` reports fewer cores (the OS timeslices — the
//!   callers' *determinism* never depends on the physical core count).
//! * **Scope** — [`ThreadPool::scope`] mirrors `std::thread::scope`: jobs
//!   spawned inside may borrow from the caller's stack, because `scope` does
//!   not return until every job has finished and every helper has detached.
//!   The scope body runs on the calling thread, which also participates in
//!   draining the job queue (a `width` of `n` means the caller plus at most
//!   `n - 1` helpers).
//! * **Work sharing** — [`Scope::spawn`] pushes one job; helpers and the
//!   caller pop jobs FIFO.  [`ThreadPool::map`] / [`ThreadPool::for_each_chunk`]
//!   build the common shapes on top: per-item results collected *in item
//!   order* (so reductions over them are deterministic regardless of which
//!   worker ran what), and chunked iteration over a slice.
//! * **Panic propagation** — a job that panics does not tear down the pool:
//!   the first payload is captured, the remaining jobs still run, and the
//!   payload is re-raised on the calling thread when the scope closes (after
//!   all helpers have detached, so no job ever outlives borrowed data).  A
//!   panic in the scope *body* likewise waits for in-flight jobs, drops the
//!   not-yet-started ones, and then resumes unwinding.
//!
//! ## Determinism contract
//!
//! The pool itself guarantees only that `map` returns results in item order
//! and that `scope` joins everything.  The engine builds byte-identical
//! fixpoints on top by giving every worker a *private* derivation buffer and
//! merging the buffers in stable task order — worker interleaving can then
//! never reach the output.  See `kbt_engine::eval` for that merge.
//!
//! ## Thread-count configuration
//!
//! [`default_threads`] is the process-wide default width: the
//! `KBT_THREADS` environment variable when set (the CI matrix pins it to
//! `1` and `4`), otherwise [`std::thread::available_parallelism`].  A width
//! of `1` never touches the pool at all — callers run their exact
//! sequential path.

//!
//! ## Beyond scopes: bounded long-lived workers
//!
//! [`WorkerSet`] is the second shape this crate offers: a fixed set of
//! named worker threads pulling independent `'static` jobs from a bounded
//! queue, with admission control ([`WorkerSet::try_submit`] refuses work at
//! capacity instead of growing).  Scoped fan-outs serve the evaluation
//! engine; the worker set serves connection supervision in the network
//! front, where a session outlives any one call stack and "reject at
//! capacity" is the correct overload behaviour.

pub mod metrics;
mod pool;
mod worker_set;

pub use metrics::{metrics, ParMetrics};
pub use pool::{chunk_size, Scope, ThreadPool};
pub use worker_set::WorkerSet;

use std::sync::OnceLock;

/// Reads the `KBT_THREADS` environment variable **fresh** (no caching):
/// `Some(n)` when it is set to a positive integer, `None` otherwise.
///
/// Unlike [`default_threads`], repeated calls observe environment changes.
/// Long-lived processes that must remain reconfigurable (e.g. a service
/// deciding its evaluation width at construction time) should read this —
/// or take an explicit width from their own configuration — instead of
/// relying on the frozen process default.
pub fn env_threads() -> Option<usize> {
    std::env::var("KBT_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_threads)
}

/// Parses a width setting: a positive integer (surrounding whitespace
/// ignored); anything else — including `0` — is "unset".
fn parse_threads(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// An **uncached** resolution of the default-width policy: `KBT_THREADS`
/// when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`], otherwise `1`.
///
/// This is exactly what [`default_threads`] computes on its first call —
/// factored out so long-lived hosts (service configuration) can apply the
/// same policy *freshly* instead of copying it; a future change to the
/// fallback then cannot diverge between the two.
pub fn fresh_threads() -> usize {
    env_threads().unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The process-wide default evaluation width: `KBT_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`] (and
/// `1` if even that is unavailable).
///
/// **Frozen on first read.**  The value is computed once and cached in a
/// `OnceLock` for the lifetime of the process; later changes to
/// `KBT_THREADS` (by a test harness or a long-lived host application) are
/// deliberately *not* observed, so that every evaluation in one process run
/// agrees on what "the default width" means.  Callers that need a
/// reconfigurable width must plumb an explicit `threads` value through their
/// own configuration (as `kbt-service` does) or read [`env_threads`]
/// themselves — nothing forces them through this cache.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(fresh_threads)
}

/// Resolves a caller-supplied thread count: `0` means "use the default"
/// ([`default_threads`]), anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        default_threads()
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive_and_stable() {
        let d = default_threads();
        assert!(d >= 1);
        assert_eq!(d, default_threads());
    }

    #[test]
    fn resolve_threads_maps_zero_to_default() {
        assert_eq!(resolve_threads(0), default_threads());
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn parse_threads_accepts_only_positive_integers() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads("  2 \n"), Some(2));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("-1"), None);
        assert_eq!(parse_threads("four"), None);
    }

    #[test]
    fn env_threads_agrees_with_the_current_environment() {
        // No env mutation here (set_var races with concurrent readers in a
        // multi-threaded test run); just check consistency with whatever the
        // harness set.  The freshness of the read is by construction —
        // `env_threads` holds no cache — and `parse_threads` is covered
        // above.
        let expected = std::env::var("KBT_THREADS")
            .ok()
            .as_deref()
            .and_then(parse_threads);
        assert_eq!(env_threads(), expected);
    }
}
