//! Pool metrics on the process-wide [`kbt_obs::Registry`].
//!
//! Counters only — the pool adds no spans of its own (scope latency is
//! visible through the engine's round histograms).  Counting is one
//! relaxed `fetch_add` per event and never influences scheduling, so the
//! callers' determinism contract is untouched.

use std::sync::OnceLock;

use kbt_obs::{Counter, Registry};

/// Handles onto the pool's series in [`Registry::global`].
pub struct ParMetrics {
    /// `kbt_par_scopes_total` — scopes opened on the shared pool.
    pub scopes_total: Counter,
    /// `kbt_par_contended_scopes_total` — scopes that wanted helpers while
    /// another scope held the pool and therefore ran caller-only.
    pub contended_scopes_total: Counter,
    /// `kbt_par_workerset_jobs_total` — jobs admitted by a [`crate::WorkerSet`].
    pub workerset_jobs_total: Counter,
    /// `kbt_par_workerset_rejected_total` — jobs refused at capacity (or
    /// during shutdown).
    pub workerset_rejected_total: Counter,
}

/// The pool's metric handles, registered once per process.  Call eagerly
/// (e.g. at service startup) to make the series visible to scrapes before
/// any parallel work has run.
pub fn metrics() -> &'static ParMetrics {
    static METRICS: OnceLock<ParMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        for (name, help) in [
            ("kbt_par_scopes_total", "Scopes opened on the shared pool."),
            (
                "kbt_par_contended_scopes_total",
                "Scopes that ran caller-only because the pool was held.",
            ),
            (
                "kbt_par_workerset_jobs_total",
                "Jobs admitted by a worker set.",
            ),
            (
                "kbt_par_workerset_rejected_total",
                "Jobs refused at capacity or during shutdown.",
            ),
        ] {
            r.describe(name, help);
        }
        ParMetrics {
            scopes_total: r.counter("kbt_par_scopes_total"),
            contended_scopes_total: r.counter("kbt_par_contended_scopes_total"),
            workerset_jobs_total: r.counter("kbt_par_workerset_jobs_total"),
            workerset_rejected_total: r.counter("kbt_par_workerset_rejected_total"),
        }
    })
}
