//! A bounded set of long-lived worker threads with admission control.
//!
//! [`ThreadPool`](crate::ThreadPool) serves *scoped* fan-outs: the caller
//! blocks until every job is done, which is exactly right for a fixpoint
//! round and exactly wrong for a server dispatching independent, long-lived
//! sessions.  [`WorkerSet`] is the complementary shape: a fixed number of
//! named worker threads pulling `'static` jobs from a bounded queue, with
//! **admission control instead of unbounded growth** — when every worker is
//! busy and the backlog allowance is exhausted, [`WorkerSet::try_submit`]
//! refuses the job and the caller decides what rejection means (the network
//! front answers `ERR unavailable` and closes the connection).
//!
//! Contracts:
//!
//! * **Bounded concurrency.**  At most `workers` jobs run at once and at
//!   most `queue_cap` wait; a submission beyond `workers + queue_cap`
//!   in-flight jobs is refused, never silently queued.
//! * **Panic containment.**  A panicking job never takes its worker thread
//!   down; the panic is swallowed (the payload dropped) and counted in
//!   [`WorkerSet::job_panics`] so the degradation stays observable.
//! * **Graceful drop.**  Dropping the set stops the workers after their
//!   current job; queued-but-unstarted jobs are dropped (their destructors
//!   run, so e.g. a queued connection is closed, not leaked).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct SetState {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    busy: usize,
    shutdown: bool,
}

struct SetShared {
    state: Mutex<SetState>,
    cv: Condvar,
    /// Jobs that panicked (contained, worker survived).
    panics: AtomicUsize,
}

impl SetShared {
    fn lock(&self) -> std::sync::MutexGuard<'_, SetState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bounded, long-lived worker set (see module docs).
pub struct WorkerSet {
    shared: Arc<SetShared>,
    workers: Vec<JoinHandle<()>>,
    queue_cap: usize,
}

impl WorkerSet {
    /// A set of `workers` threads (named `<name>-<i>`) admitting up to
    /// `queue_cap` queued jobs beyond the ones running.  `workers` is
    /// clamped to at least 1.
    pub fn new(name: &str, workers: usize, queue_cap: usize) -> Self {
        let shared = Arc::new(SetShared {
            state: Mutex::new(SetState {
                queue: VecDeque::new(),
                busy: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            panics: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_main(&shared))
                    .expect("spawning a worker-set thread")
            })
            .collect();
        WorkerSet {
            shared,
            workers,
            queue_cap,
        }
    }

    /// Submits a job unless the set is at capacity (every worker busy and
    /// the queue allowance exhausted) or shutting down; returns whether the
    /// job was admitted.  Admitted jobs run FIFO.
    pub fn try_submit<F>(&self, job: F) -> bool
    where
        F: FnOnce() + Send + 'static,
    {
        let mut st = self.shared.lock();
        if st.shutdown || st.busy + st.queue.len() >= self.workers.len() + self.queue_cap {
            crate::metrics::metrics().workerset_rejected_total.inc();
            return false;
        }
        crate::metrics::metrics().workerset_jobs_total.inc();
        st.queue.push_back(Box::new(job));
        // notify_all, not notify_one: the condvar is shared with
        // `wait_idle`, and a single wakeup could land on that waiter (which
        // just goes back to sleep) instead of an idle worker, stalling the
        // admitted job until some other notification arrives
        self.shared.cv.notify_all();
        true
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently executing.
    pub fn busy(&self) -> usize {
        self.shared.lock().busy
    }

    /// Jobs admitted but not yet started.
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Jobs that panicked (the workers survived; see module docs).
    pub fn job_panics(&self) -> usize {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Blocks until no job is running or queued (a test/shutdown helper;
    /// racy as a steady-state predicate, exact once submissions stopped).
    pub fn wait_idle(&self) {
        let mut st = self.shared.lock();
        while st.busy > 0 || !st.queue.is_empty() {
            st = self
                .shared
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for WorkerSet {
    fn drop(&mut self) {
        let dropped: Vec<Job> = {
            let mut st = self.shared.lock();
            st.shutdown = true;
            st.queue.drain(..).collect()
        };
        drop(dropped); // run queued jobs' destructors outside the lock
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(shared: &SetShared) {
    let mut st = shared.lock();
    loop {
        if st.shutdown {
            return;
        }
        if let Some(job) = st.queue.pop_front() {
            st.busy += 1;
            drop(st);
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                shared.panics.fetch_add(1, Ordering::Relaxed);
            }
            st = shared.lock();
            st.busy -= 1;
            shared.cv.notify_all();
            continue;
        }
        st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_the_set_drains() {
        let set = WorkerSet::new("ws-test", 3, 8);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let count = count.clone();
            assert!(set.try_submit(move || {
                count.fetch_add(1, Ordering::Relaxed);
            }));
        }
        set.wait_idle();
        assert_eq!(count.load(Ordering::Relaxed), 8);
        assert_eq!(set.busy(), 0);
        assert_eq!(set.queued(), 0);
    }

    #[test]
    fn submissions_beyond_capacity_are_refused() {
        // 2 workers, no queue allowance: with both workers held on a
        // barrier, a third submission must be refused.
        let set = WorkerSet::new("ws-cap", 2, 0);
        let gate = Arc::new(Barrier::new(3));
        for _ in 0..2 {
            let gate = gate.clone();
            assert!(set.try_submit(move || {
                gate.wait();
            }));
        }
        // wait until both jobs actually occupy their workers
        while set.busy() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(!set.try_submit(|| {}), "third job must be rejected");
        gate.wait();
        set.wait_idle();
        assert!(
            set.try_submit(|| {}),
            "capacity frees up after the jobs end"
        );
        set.wait_idle();
    }

    #[test]
    fn queue_allowance_admits_waiting_jobs() {
        let set = WorkerSet::new("ws-queue", 1, 2);
        let gate = Arc::new(Barrier::new(2));
        {
            let gate = gate.clone();
            assert!(set.try_submit(move || {
                gate.wait();
            }));
        }
        while set.busy() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(set.try_submit(|| {}), "first queued job fits the allowance");
        assert!(
            set.try_submit(|| {}),
            "second queued job fits the allowance"
        );
        assert!(!set.try_submit(|| {}), "beyond busy + queue_cap is refused");
        gate.wait();
        set.wait_idle();
    }

    #[test]
    fn panicking_jobs_are_contained_and_counted() {
        let set = WorkerSet::new("ws-panic", 1, 4);
        assert!(set.try_submit(|| panic!("job failed")));
        set.wait_idle();
        assert_eq!(set.job_panics(), 1);
        // the worker survived and keeps serving
        let ran = Arc::new(AtomicUsize::new(0));
        let flag = ran.clone();
        assert!(set.try_submit(move || {
            flag.fetch_add(1, Ordering::Relaxed);
        }));
        set.wait_idle();
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drop_runs_queued_destructors_and_joins() {
        struct Marker(Arc<AtomicUsize>);
        impl Drop for Marker {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let dropped = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(2));
        let set = WorkerSet::new("ws-drop", 1, 8);
        {
            let gate = gate.clone();
            assert!(set.try_submit(move || {
                gate.wait();
            }));
        }
        while set.busy() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // queued behind the running job; must be dropped, not run
        let marker = Marker(dropped.clone());
        assert!(set.try_submit(move || {
            let _hold = &marker;
            unreachable!("queued job must be dropped at shutdown, not run");
        }));
        // Release the in-flight job only *after* drop has begun: Drop
        // drains the queue (dropping the marker) before joining, so the
        // worker can never reach the queued job.
        let releaser = {
            let gate = gate.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                gate.wait();
            })
        };
        drop(set);
        releaser.join().unwrap();
        assert_eq!(dropped.load(Ordering::Relaxed), 1);
    }
}
