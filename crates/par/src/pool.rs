//! The thread pool: persistent helper threads, scoped job queues, and the
//! chunked work-sharing helpers built on top.
//!
//! See the crate docs for the design overview.  The implementation notes
//! that matter for safety live on [`ThreadPool::scope`] and [`Scope::spawn`].

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Upper bound on helper threads the pool will ever spawn, however wide a
/// caller asks to go (a runaway `threads` request must not fork-bomb).
const MAX_HELPERS: usize = 64;

/// How many chunks per participating thread [`ThreadPool::for_each_chunk`]
/// aims for: more than one so a slow chunk does not serialise the round,
/// bounded so per-chunk overhead stays negligible.
const CHUNKS_PER_THREAD: usize = 4;

/// A lifetime-erased job.  Only [`Scope::spawn`] creates these, and the
/// erasure is sound because [`ThreadPool::scope`] joins every job before it
/// returns (see there).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State of one scope, shared between the caller and the helper threads.
struct ScopeState {
    /// Spawned, not-yet-started jobs (FIFO — the work-sharing queue).
    queue: VecDeque<Job>,
    /// Spawned jobs that have not finished (queued + currently running).
    pending: usize,
    /// No further jobs will arrive; set once the caller has drained.
    closed: bool,
    /// Helper slots still available (`width - 1` at the start).
    helpers_allowed: usize,
    /// Helpers currently attached to this scope.
    helpers_active: usize,
    /// First panic payload raised by a job.
    panic: Option<Box<dyn Any + Send>>,
}

/// One scope's queue plus the condvar everything synchronises on.
struct ScopeShared {
    state: Mutex<ScopeState>,
    cv: Condvar,
}

impl ScopeShared {
    fn new(helpers_allowed: usize) -> Self {
        ScopeShared {
            state: Mutex::new(ScopeState {
                queue: VecDeque::new(),
                pending: 0,
                closed: false,
                helpers_allowed,
                helpers_active: 0,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(!st.closed, "spawn after the scope closed");
        st.queue.push_back(job);
        st.pending += 1;
        self.cv.notify_all();
    }

    /// Runs queued jobs until there is nothing left to do.  The caller
    /// (`caller = true`) keeps going until every pending job has *finished*;
    /// helpers leave as soon as the scope is closed.
    fn drain(&self, caller: bool) {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(job) = st.queue.pop_front() {
                drop(st);
                let outcome = catch_unwind(AssertUnwindSafe(job));
                st = self.state.lock().unwrap();
                st.pending -= 1;
                if let Err(payload) = outcome {
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                }
                self.cv.notify_all();
                continue;
            }
            if caller {
                if st.pending == 0 {
                    return;
                }
            } else if st.closed {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Drops every not-yet-started job (used when the scope body panicked:
    /// the work is abandoned, only in-flight jobs are awaited).
    fn clear_queue(&self) {
        let dropped: Vec<Job> = {
            let mut st = self.state.lock().unwrap();
            let dropped: Vec<Job> = st.queue.drain(..).collect();
            st.pending -= dropped.len();
            dropped
        };
        drop(dropped); // run captured destructors outside the lock
        self.cv.notify_all();
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.cv.notify_all();
    }

    /// A helper claims a participation slot; refused once the scope closed
    /// or the width limit is reached.
    fn try_attach(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.closed || st.helpers_allowed == 0 {
            return false;
        }
        st.helpers_allowed -= 1;
        st.helpers_active += 1;
        true
    }

    fn detach(&self) {
        let mut st = self.state.lock().unwrap();
        st.helpers_active -= 1;
        self.cv.notify_all();
    }

    /// Blocks until every attached helper has detached.
    fn wait_detached(&self) {
        let mut st = self.state.lock().unwrap();
        while st.helpers_active > 0 {
            st = self.cv.wait(st).unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.state.lock().unwrap().panic.take()
    }
}

/// Pool-level state: the currently installed scope, if any.
struct PoolState {
    scope: Option<Arc<ScopeShared>>,
    /// Bumped per installation so sleeping workers can tell a new scope from
    /// the one they already served.
    epoch: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// A pool of persistent helper threads.  See the crate docs for the design.
///
/// The pool serves **one scope at a time**: a scope that arrives while
/// another is installed runs correctly but unassisted (the calling thread
/// drains its own queue at effective width 1).  That degradation is
/// deliberate — helpers never interleave two scopes' borrowed stacks — but
/// it must be *observable*, so it is counted in
/// [`ThreadPool::contended_scopes`]; a serving layer that fans out many
/// concurrent wide evaluations can watch the counter to see how often its
/// configured width was not actually honoured.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Scopes that wanted helpers but found the pool busy (ran caller-only).
    contended: AtomicUsize,
}

impl ThreadPool {
    /// A pool with `helpers` pre-spawned helper threads (the pool grows on
    /// demand up to an internal cap when a wider scope is requested, so `0`
    /// is a fine starting point).
    pub fn new(helpers: usize) -> Self {
        let pool = ThreadPool {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    scope: None,
                    epoch: 0,
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            contended: AtomicUsize::new(0),
        };
        pool.ensure_workers(helpers);
        pool
    }

    /// The process-wide pool used by the evaluation engine, initially sized
    /// to [`crate::default_threads`]` - 1` helpers.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(crate::default_threads().saturating_sub(1)))
    }

    /// Number of helper threads currently alive.
    pub fn helpers(&self) -> usize {
        self.workers.lock().unwrap().len()
    }

    /// Number of scopes that requested helpers while another scope held
    /// the pool and therefore ran caller-only (see the type docs).
    pub fn contended_scopes(&self) -> usize {
        self.contended.load(Ordering::Relaxed)
    }

    fn ensure_workers(&self, n: usize) {
        let n = n.min(MAX_HELPERS);
        let mut workers = self.workers.lock().unwrap();
        while workers.len() < n {
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("kbt-par-{}", workers.len()))
                .spawn(move || worker_main(&shared))
                .expect("spawning a pool worker thread");
            workers.push(handle);
        }
    }

    /// Installs `scope` as the pool's current scope; `false` if another
    /// scope is already running (the caller then works alone, which is
    /// always correct, just unassisted).
    fn install(&self, scope: &Arc<ScopeShared>) -> bool {
        let mut st = self.shared.state.lock().unwrap();
        if st.scope.is_some() || st.shutdown {
            return false;
        }
        st.scope = Some(scope.clone());
        st.epoch += 1;
        self.shared.cv.notify_all();
        true
    }

    fn uninstall(&self, scope: &Arc<ScopeShared>) {
        let mut st = self.shared.state.lock().unwrap();
        if st.scope.as_ref().is_some_and(|s| Arc::ptr_eq(s, scope)) {
            st.scope = None;
        }
    }

    /// Runs `f` with a [`Scope`] whose jobs may borrow anything that
    /// outlives the `scope` call, executed by the calling thread plus up to
    /// `width - 1` pool helpers.
    ///
    /// Every spawned job is guaranteed to have finished — and every helper
    /// to have detached from the scope — before `scope` returns or unwinds.
    /// That join is what makes the internal lifetime erasure of
    /// [`Scope::spawn`] sound: no job and no worker can observe a borrow of
    /// the caller's stack after `scope` is over.
    ///
    /// If a job panics, the first payload is re-raised here after the scope
    /// has fully joined; a panic in `f` itself takes precedence (queued jobs
    /// are then dropped unstarted, in-flight ones are still awaited).
    pub fn scope<'env, F, R>(&self, width: usize, f: F) -> R
    where
        F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    {
        crate::metrics::metrics().scopes_total.inc();
        let helpers_wanted = width.saturating_sub(1).min(MAX_HELPERS);
        let shared = Arc::new(ScopeShared::new(helpers_wanted));
        let installed = if helpers_wanted > 0 {
            self.ensure_workers(helpers_wanted);
            let installed = self.install(&shared);
            if !installed {
                self.contended.fetch_add(1, Ordering::Relaxed);
                crate::metrics::metrics().contended_scopes_total.inc();
            }
            installed
        } else {
            false
        };
        let scope = Scope {
            shared: shared.clone(),
            scope: PhantomData,
            env: PhantomData,
        };

        let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        if body.is_err() {
            shared.clear_queue();
        }
        shared.drain(true);
        shared.close();
        if installed {
            self.uninstall(&shared);
        }
        shared.wait_detached();

        let job_panic = shared.take_panic();
        match body {
            Err(payload) => resume_unwind(payload),
            Ok(result) => {
                if let Some(payload) = job_panic {
                    resume_unwind(payload);
                }
                result
            }
        }
    }

    /// Applies `f` to every item, at most `width` threads wide, returning
    /// the results **in item order** regardless of which worker computed
    /// what.  `width <= 1` (or a single item) runs inline with no pool
    /// involvement at all.
    pub fn map<T, R, F>(&self, width: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        if width <= 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots: Vec<Slot<R>> = items.iter().map(|_| Slot::empty()).collect();
        let f = &f;
        self.scope(width, |s| {
            for (i, (item, slot)) in items.iter().zip(&slots).enumerate() {
                s.spawn(move || slot.set(f(i, item)));
            }
        });
        slots
            .into_iter()
            .map(|s| s.take().expect("scope() joins every job"))
            .collect()
    }

    /// Splits `items` into chunks of at least `min_chunk` (aiming for a few
    /// chunks per thread) and calls `f(chunk_index, chunk)` for each, at
    /// most `width` threads wide.  The chunk decomposition depends only on
    /// `items.len()`, `width` and `min_chunk` — never on scheduling.
    pub fn for_each_chunk<T, F>(&self, width: usize, min_chunk: usize, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &[T]) + Sync,
    {
        if items.is_empty() {
            return;
        }
        let chunk = chunk_size(items.len(), width, min_chunk);
        if width <= 1 || items.len() <= chunk {
            for (i, c) in items.chunks(chunk).enumerate() {
                f(i, c);
            }
            return;
        }
        let f = &f;
        self.scope(width, |s| {
            for (i, c) in items.chunks(chunk).enumerate() {
                s.spawn(move || f(i, c));
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for handle in self.workers.get_mut().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

/// The deterministic chunk length for a slice of `len` work items split
/// across `width` threads: a few chunks per thread (so a slow chunk does not
/// serialise the tail), never below `min_chunk` (so per-chunk overhead stays
/// negligible).  [`ThreadPool::for_each_chunk`] uses it internally, and the
/// evaluation engine uses the same function to chunk a round's driving
/// scans — one chunking policy for the whole workspace.
pub fn chunk_size(len: usize, width: usize, min_chunk: usize) -> usize {
    let target = len.div_ceil(width.max(1) * CHUNKS_PER_THREAD);
    target.max(min_chunk).max(1)
}

/// Handle for spawning jobs inside [`ThreadPool::scope`]; mirrors
/// [`std::thread::Scope`].
pub struct Scope<'scope, 'env: 'scope> {
    shared: Arc<ScopeShared>,
    /// Invariant over `'scope`, like `std::thread::Scope`: jobs may borrow
    /// `'scope` data but the scope handle must not be smuggled out.
    scope: PhantomData<&'scope mut &'scope ()>,
    env: PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queues one job.  Jobs run on the calling thread or a pool helper, in
    /// FIFO claim order; a job may itself spawn further jobs onto the same
    /// scope.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: only the lifetime is erased.  `ThreadPool::scope` does not
        // return (or unwind) before every job has run or been dropped and
        // every helper has detached, so the boxed closure never outlives the
        // `'scope` borrows it captures.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(job)
        };
        self.shared.push(job);
    }
}

/// A write-once result cell for [`ThreadPool::map`].
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: each slot is written by exactly one job (the one holding its
// reference) and read only after `scope()` has joined all jobs, so there is
// never a concurrent access.
unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> Slot<T> {
    fn empty() -> Self {
        Slot(UnsafeCell::new(None))
    }

    fn set(&self, value: T) {
        // SAFETY: see the `Sync` impl — this is the only writer.
        unsafe { *self.0.get() = Some(value) }
    }

    fn take(self) -> Option<T> {
        self.0.into_inner()
    }
}

fn worker_main(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let scope = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(scope) = &st.scope {
                    if st.epoch != seen_epoch {
                        seen_epoch = st.epoch;
                        break scope.clone();
                    }
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        if scope.try_attach() {
            scope.drain(false);
            scope.detach();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_returns_results_in_item_order() {
        let pool = ThreadPool::new(3);
        let items: Vec<usize> = (0..200).collect();
        let got = pool.map(4, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(got, (0..200).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn width_one_runs_inline_without_helpers() {
        let pool = ThreadPool::new(0);
        let main_id = std::thread::current().id();
        let got = pool.map(1, &[1u32, 2, 3], |_, &x| {
            assert_eq!(std::thread::current().id(), main_id);
            x + 1
        });
        assert_eq!(got, vec![2, 3, 4]);
        assert_eq!(pool.helpers(), 0);
    }

    #[test]
    fn scope_jobs_borrow_the_callers_stack() {
        let pool = ThreadPool::new(2);
        let data: Vec<u64> = (1..=100).collect();
        let total = AtomicUsize::new(0);
        pool.scope(3, |s| {
            for chunk in data.chunks(7) {
                let total = &total;
                s.spawn(move || {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn jobs_can_spawn_more_jobs() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.scope(3, |s| {
            let count = &count;
            for _ in 0..4 {
                s.spawn(move || {
                    count.fetch_add(1, Ordering::Relaxed);
                    s.spawn(move || {
                        count.fetch_add(10, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 44);
    }

    #[test]
    fn job_panics_propagate_and_the_pool_survives() {
        let pool = ThreadPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map(4, &[1u32, 2, 3, 4], |_, &x| {
                if x == 3 {
                    panic!("job {x} failed");
                }
                x
            });
        }));
        assert!(caught.is_err(), "the job panic must surface");
        // the pool remains usable
        let got = pool.map(4, &[10u32, 20], |_, &x| x + 1);
        assert_eq!(got, vec![11, 21]);
    }

    #[test]
    fn body_panics_still_join_inflight_jobs() {
        let pool = ThreadPool::new(2);
        let ran = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(3, |s| {
                let ran = &ran;
                for _ in 0..8 {
                    s.spawn(move || {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body failed");
            })
        }));
        assert!(caught.is_err());
        // whatever ran, the scope joined: a subsequent scope works fine and
        // the counter is stable (no job still running in the background).
        let after = ran.load(Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(ran.load(Ordering::Relaxed), after);
    }

    #[test]
    fn for_each_chunk_covers_every_item_exactly_once() {
        let pool = ThreadPool::new(3);
        for (len, width, min_chunk) in [(0usize, 4, 8), (5, 4, 8), (100, 4, 8), (1000, 2, 1)] {
            let items: Vec<usize> = (0..len).collect();
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            pool.for_each_chunk(width, min_chunk, &items, |_, chunk| {
                for &x in chunk {
                    hits[x].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "len {len} width {width}"
            );
        }
    }

    #[test]
    fn chunk_sizes_are_deterministic_and_bounded() {
        assert_eq!(chunk_size(0, 4, 8), 8);
        assert_eq!(chunk_size(1000, 1, 1), 250);
        assert!(chunk_size(1000, 4, 1) >= 1000 / (4 * CHUNKS_PER_THREAD));
        assert_eq!(chunk_size(10, 4, 64), 64);
    }

    #[test]
    fn concurrent_scopes_run_caller_only_and_are_counted() {
        // the pool serves one scope at a time; a second, overlapping scope
        // must still compute correctly (caller drains alone) and the
        // degradation must show up in the contention counter
        let pool = ThreadPool::new(2);
        assert_eq!(pool.contended_scopes(), 0);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                pool.scope(2, |sc| {
                    sc.spawn(|| {
                        barrier.wait(); // 1: scope A is installed and busy
                        barrier.wait(); // 2: hold it until B has finished
                    });
                });
            });
            barrier.wait(); // 1
            let got = pool.map(4, &[1, 2, 3], |_, &x: &i32| x * 2);
            assert_eq!(got, vec![2, 4, 6], "contended map must still be correct");
            assert_eq!(pool.contended_scopes(), 1);
            barrier.wait(); // 2
        });
    }

    #[test]
    fn global_pool_is_shared() {
        let a = ThreadPool::global() as *const _;
        let b = ThreadPool::global() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn wide_scopes_grow_the_worker_set_up_to_the_cap() {
        let pool = ThreadPool::new(0);
        pool.map(3, &(0..64).collect::<Vec<_>>(), |_, &x: &i32| x);
        assert!(pool.helpers() >= 2);
        pool.map(100_000, &[1, 2], |_, &x: &i32| x);
        assert!(pool.helpers() <= MAX_HELPERS);
    }
}
