//! # kbt-bench — shared helpers for the benchmark harness
//!
//! Each Criterion bench target under `benches/` regenerates one experiment of
//! EXPERIMENTS.md (one row-group of the paper's Section 4 complexity table, a
//! Section 3 example, or a Section 4/5 reduction).  This library crate only
//! hosts the small helpers the targets share, so that the benchmark code
//! itself stays focused on the experiment being reproduced.

use std::time::Duration;

use criterion::Criterion;

/// A Criterion configuration tuned for repository-sized runs: small sample
/// counts and short measurement windows, because the interesting signal here
/// is asymptotic shape (polynomial versus exponential growth), not
/// microsecond-level precision.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
        .configure_from_args()
}

pub use criterion;

#[cfg(test)]
mod tests {
    #[test]
    fn quick_criterion_is_constructible() {
        let _ = super::quick_criterion();
    }
}
