//! # kbt-bench — shared helpers for the benchmark harness
//!
//! Each Criterion bench target under `benches/` regenerates one experiment of
//! EXPERIMENTS.md (one row-group of the paper's Section 4 complexity table, a
//! Section 3 example, or a Section 4/5 reduction).  This library crate only
//! hosts the small helpers the targets share, so that the benchmark code
//! itself stays focused on the experiment being reproduced.

use std::time::Duration;

use criterion::Criterion;

/// A Criterion configuration tuned for repository-sized runs: small sample
/// counts and short measurement windows, because the interesting signal here
/// is asymptotic shape (polynomial versus exponential growth), not
/// microsecond-level precision.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500))
        .configure_from_args()
}

pub use criterion;

pub mod alloc_counter {
    //! A counting global allocator for allocation-budget assertions.
    //!
    //! Install [`CountingAlloc`] as the `#[global_allocator]` of a bench or
    //! test binary, then bracket the region of interest with [`reset`] /
    //! [`snapshot`].  Counting is process-global and relaxed-atomic, so
    //! keep measured regions single-threaded (the engine's sequential inner
    //! loops, which is exactly what the zero-allocation probe assertions
    //! target).  `dealloc` is deliberately not counted: the interesting
    //! budget is *new* heap traffic per operation.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// System allocator wrapper that counts allocations and allocated bytes
    /// (`alloc`, `alloc_zeroed` and growth via `realloc`).
    pub struct CountingAlloc;

    // SAFETY: defers all allocation to `System`; the wrapper only touches
    // two atomics.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc_zeroed(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(
                new_size.saturating_sub(layout.size()) as u64,
                Ordering::Relaxed,
            );
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Zeroes both counters.
    pub fn reset() {
        ALLOCS.store(0, Ordering::Relaxed);
        BYTES.store(0, Ordering::Relaxed);
    }

    /// `(allocations, bytes)` since the last [`reset`].
    pub fn snapshot() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

/// Publishes an allocation measurement into the `KBT_BENCH_JSON` report as
/// two records, `{name}/allocs` and `{name}/bytes` (the `_ns` field names
/// are an artifact of the shared record shape — the values are counts).
/// They ride the same baseline-comparison pipeline as the timing medians,
/// un-gated, so an allocation regression warns in the PR summary without
/// failing the job on runner noise.
pub fn record_alloc(name: &str, allocs: u64, bytes: u64) {
    let flat = |v: u64| criterion::BenchRecord {
        median_ns: v as f64,
        mean_ns: v as f64,
        min_ns: v as f64,
        max_ns: v as f64,
    };
    criterion::record_external(&format!("{name}/allocs"), flat(allocs));
    criterion::record_external(&format!("{name}/bytes"), flat(bytes));
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_criterion_is_constructible() {
        let _ = super::quick_criterion();
    }

    #[test]
    fn alloc_counter_observes_heap_traffic() {
        // The counter is attached per *binary*; in this test binary the
        // global allocator is the plain system one, so only the counter
        // arithmetic is checked here (the end-to-end wiring is asserted by
        // the `zero_alloc` integration test, which installs the allocator).
        super::alloc_counter::reset();
        assert_eq!(super::alloc_counter::snapshot(), (0, 0));
    }
}
