//! `bench_compare` — diff a bench run's medians against committed
//! baselines and emit a markdown delta table.
//!
//! CI's `bench-trajectory` job records fresh medians (the criterion shim's
//! `KBT_BENCH_JSON` files) and then runs this tool against the committed
//! `BENCH_*.json` baselines; the table goes to the job's step summary, so
//! a perf regression surfaces *in the PR* instead of only inside an
//! artifact nobody opens.
//!
//! ```text
//! bench_compare --baseline BENCH_x.json --current out/BENCH_x.json …
//!               [--warn-ratio 1.25] [--fail-ratio 3.0]
//!               [--fail-on name,name,…]
//! ```
//!
//! * a benchmark at `current/baseline >= warn-ratio` is flagged `warn`;
//! * one at `>= fail-ratio` **and named in `--fail-on`** makes the tool
//!   exit non-zero (`FAIL`) — the allowlist exists because absolute times
//!   move between machines, so only deliberately chosen benches gate;
//! * an allowlisted benchmark missing from the current run also fails —
//!   silently dropping a gated bench must not pass;
//! * everything else (improvements, new benches) is informational.
//!
//! The JSON format is the flat one the vendored criterion shim writes:
//! one `"group/name": { "median_ns": … }` record per line.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed benchmark record (only the median matters here).
#[derive(Clone, Copy, Debug, Default)]
struct Record {
    median_ns: f64,
}

/// Parses the flat two-level JSON the criterion shim writes (one record
/// per line); anything unrecognised is skipped.
fn parse_bench_json(text: &str) -> BTreeMap<String, Record> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, fields)) = rest.split_once("\": {") else {
            continue;
        };
        for field in fields.trim_end_matches([' ', '}']).split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            if key.trim().trim_matches('"') != "median_ns" {
                continue;
            }
            if let Ok(median_ns) = value.trim().parse::<f64>() {
                out.insert(name.to_string(), Record { median_ns });
            }
        }
    }
    out
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The verdict for one benchmark row.
#[derive(Clone, Debug, PartialEq)]
enum Verdict {
    Ok,
    Improved(f64),
    Warn(f64),
    Fail(f64),
    /// Slower past the fail ratio but not allowlisted: loud, not fatal.
    WarnHard(f64),
    New,
    Missing {
        gated: bool,
    },
}

fn judge(
    baseline: Option<f64>,
    current: Option<f64>,
    warn_ratio: f64,
    fail_ratio: f64,
    gated: bool,
) -> Verdict {
    match (baseline, current) {
        (None, Some(_)) => Verdict::New,
        (Some(_), None) | (None, None) => Verdict::Missing { gated },
        (Some(base), Some(cur)) => {
            // a zero/absurd baseline would make every ratio infinite;
            // treat it as incomparable-but-present
            if base <= 0.0 {
                return Verdict::New;
            }
            let ratio = cur / base;
            if ratio >= fail_ratio {
                if gated {
                    Verdict::Fail(ratio)
                } else {
                    Verdict::WarnHard(ratio)
                }
            } else if ratio >= warn_ratio {
                Verdict::Warn(ratio)
            } else if ratio <= 1.0 / warn_ratio {
                Verdict::Improved(ratio)
            } else {
                Verdict::Ok
            }
        }
    }
}

fn main() -> ExitCode {
    let mut baselines: Vec<String> = Vec::new();
    let mut currents: Vec<String> = Vec::new();
    let mut warn_ratio = 1.25f64;
    let mut fail_ratio = 3.0f64;
    let mut fail_on: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baselines.push(take("--baseline")),
            "--current" => currents.push(take("--current")),
            "--warn-ratio" => {
                warn_ratio = take("--warn-ratio").parse().unwrap_or_else(|_| {
                    eprintln!("--warn-ratio needs a number");
                    std::process::exit(2);
                })
            }
            "--fail-ratio" => {
                fail_ratio = take("--fail-ratio").parse().unwrap_or_else(|_| {
                    eprintln!("--fail-ratio needs a number");
                    std::process::exit(2);
                })
            }
            "--fail-on" => fail_on.extend(
                take("--fail-on")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty()),
            ),
            "--help" | "-h" => {
                println!(
                    "usage: bench_compare --baseline FILE --current FILE … \
                     [--warn-ratio R] [--fail-ratio R] [--fail-on a,b,…]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if baselines.len() != currents.len() || baselines.is_empty() {
        eprintln!("need matching --baseline/--current pairs (at least one)");
        return ExitCode::from(2);
    }

    let read_all = |paths: &[String]| -> BTreeMap<String, Record> {
        let mut all = BTreeMap::new();
        for path in paths {
            match std::fs::read_to_string(path) {
                Ok(text) => all.extend(parse_bench_json(&text)),
                Err(e) => eprintln!("warning: cannot read {path}: {e}"),
            }
        }
        all
    };
    let baseline = read_all(&baselines);
    let current = read_all(&currents);

    let mut names: Vec<&String> = baseline.keys().chain(current.keys()).collect();
    names.sort();
    names.dedup();

    println!("## Bench medians vs committed baselines\n");
    println!(
        "warn at ≥{warn_ratio:.2}× slower, fail at ≥{fail_ratio:.2}× on the allowlist \
         ({} gated bench(es))\n",
        fail_on.len()
    );
    println!("| benchmark | baseline | current | ratio | verdict |");
    println!("|---|---:|---:|---:|---|");

    let mut failures = 0usize;
    for name in names {
        let base = baseline.get(name).map(|r| r.median_ns);
        let cur = current.get(name).map(|r| r.median_ns);
        let gated = fail_on.iter().any(|g| g == name);
        let verdict = judge(base, cur, warn_ratio, fail_ratio, gated);
        let ratio_text = match (base, cur) {
            (Some(b), Some(c)) if b > 0.0 => format!("{:.2}×", c / b),
            _ => "—".to_string(),
        };
        let verdict_text = match &verdict {
            Verdict::Ok => "ok".to_string(),
            Verdict::Improved(_) => "improved".to_string(),
            Verdict::Warn(_) => "⚠ warn (slower)".to_string(),
            Verdict::WarnHard(_) => "⚠ warn (past fail ratio, not gated)".to_string(),
            Verdict::Fail(_) => {
                failures += 1;
                "✖ FAIL".to_string()
            }
            Verdict::New => "new".to_string(),
            Verdict::Missing { gated } => {
                if *gated {
                    failures += 1;
                    "✖ FAIL (gated bench missing)".to_string()
                } else {
                    "missing from this run".to_string()
                }
            }
        };
        let fmt = |v: Option<f64>| v.map(format_ns).unwrap_or_else(|| "—".to_string());
        println!(
            "| {name}{} | {} | {} | {ratio_text} | {verdict_text} |",
            if gated { " 🔒" } else { "" },
            fmt(base),
            fmt(cur)
        );
    }
    // gated benches absent from *both* files still have to fail: being
    // deleted everywhere is the quietest way for a gate to rot away
    for gate in &fail_on {
        if !baseline.contains_key(gate) && !current.contains_key(gate) {
            failures += 1;
            println!("| {gate} 🔒 | — | — | — | ✖ FAIL (unknown gated bench) |");
        }
    }

    if failures > 0 {
        println!("\n**{failures} gated regression(s)/omission(s) — failing the job.**");
        return ExitCode::FAILURE;
    }
    println!("\nNo gated regressions.");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shim_format() {
        let text = r#"{
  "g/one": { "median_ns": 1.5, "mean_ns": 2.0, "min_ns": 1.0, "max_ns": 3.0 },
  "g/two": { "median_ns": 1000000, "mean_ns": 1.0, "min_ns": 1.0, "max_ns": 1.0 }
}
"#;
        let parsed = parse_bench_json(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["g/one"].median_ns, 1.5);
        assert_eq!(parsed["g/two"].median_ns, 1_000_000.0);
    }

    #[test]
    fn verdicts_follow_the_ratios() {
        let j = |b, c, gated| judge(b, c, 1.25, 3.0, gated);
        assert_eq!(j(Some(100.0), Some(100.0), false), Verdict::Ok);
        assert!(matches!(
            j(Some(100.0), Some(50.0), false),
            Verdict::Improved(_)
        ));
        assert!(matches!(
            j(Some(100.0), Some(150.0), false),
            Verdict::Warn(_)
        ));
        assert!(matches!(
            j(Some(100.0), Some(400.0), false),
            Verdict::WarnHard(_)
        ));
        assert!(matches!(
            j(Some(100.0), Some(400.0), true),
            Verdict::Fail(_)
        ));
        assert_eq!(j(None, Some(1.0), true), Verdict::New);
        assert_eq!(j(Some(1.0), None, true), Verdict::Missing { gated: true });
    }

    #[test]
    fn ratio_boundaries_are_inclusive() {
        let j = |c| judge(Some(100.0), Some(c), 1.25, 3.0, true);
        assert!(matches!(j(125.0), Verdict::Warn(_)));
        assert!(matches!(j(124.9), Verdict::Ok));
        assert!(matches!(j(300.0), Verdict::Fail(_)));
        assert!(matches!(j(299.9), Verdict::Warn(_)));
        assert!(matches!(j(80.0), Verdict::Improved(_)));
    }
}
