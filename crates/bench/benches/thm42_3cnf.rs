//! Experiment E5 — Theorem 4.2: 3CNF satisfiability decided by a
//! transformation expression, against the DPLL baseline.
//!
//! The transformation route enumerates one possible world per truth
//! assignment, so its cost explodes with the number of variables while DPLL
//! sails through; this asymmetry is the empirical face of the theorem's
//! "not in NP ∪ co-NP unless NP = co-NP" lower bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::Transformer;
use kbt_reductions::threecnf::{satisfiable_via_dpll, satisfiable_via_transformation, ThreeCnf};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn via_transformation(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm42/via_transformation");
    let t = Transformer::new();
    let mut rng = StdRng::seed_from_u64(2024);
    for clauses in [2usize, 3] {
        let instance = ThreeCnf::random(3, clauses, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(clauses), &clauses, |b, _| {
            b.iter(|| satisfiable_via_transformation(&t, &instance).unwrap());
        });
    }
    group.finish();
}

fn via_dpll(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm42/via_dpll");
    let mut rng = StdRng::seed_from_u64(2024);
    for vars in [10u32, 20, 40, 80] {
        let instance = ThreeCnf::random(vars, (vars as f64 * 4.2) as usize, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(vars), &vars, |b, _| {
            b.iter(|| satisfiable_via_dpll(&instance));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = via_transformation, via_dpll
}
criterion_main!(benches);
