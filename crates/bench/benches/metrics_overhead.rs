//! `metrics_overhead` — what the observability layer costs on the serving
//! read path, and what its primitives cost in isolation.
//!
//! The acceptance bar is that instrumentation stays under 5% on the
//! serving read path.  The on/off comparisons here are **paired**: each
//! round times both variants back to back (alternating which goes first),
//! so clock drift, cache warm-up and frequency scaling hit both sides of
//! the comparison equally.  The published `_on`/`_off` records come from
//! the same interleaved run — unlike two sequential `bench_function`
//! blocks, whose medians are separated by seconds of unrelated drift —
//! and the `profile_overhead` record is the paired per-round delta
//! itself, in percent, which CI gates directly.
//!
//! Counters record in both settings by design — only clock reads are
//! gated — which is why the `_off` variants are not a zero-instrumentation
//! baseline but the documented "disabled" cost model (one relaxed load per
//! span site).
//!
//! The primitive benches (`counter_inc`, `histogram_record`,
//! `span_enabled`, `span_disabled`) pin the per-operation costs the crate
//! docs of `kbt-obs` promise.
//!
//! Run with `KBT_BENCH_JSON=BENCH_service.json` to record the medians.

use std::time::Instant;

use kbt_bench::criterion::{
    black_box, criterion_group, criterion_main, record_external, BenchRecord, Criterion,
};
use kbt_bench::quick_criterion;
use kbt_obs::Registry;
use kbt_service::{Service, ServiceConfig};

/// Chain length of the seeded graph (same shape as `service_throughput`).
const EDGES: u32 = 100;

/// Paired rounds per comparison (each round times both variants).
const ROUNDS: usize = 20;

/// The hypothetical transitive-closure read `profile_overhead` compares
/// under `QUERY` and `PROFILE` (the `service_throughput` refresh shape).
const TC: &str = "tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
                  (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]; lub";

fn seeded_service() -> Service {
    let service = Service::new(ServiceConfig::default());
    for i in 0..EDGES {
        service
            .execute(&format!("ASSERT edge({i}, {})", i + 1))
            .expect("assert");
    }
    service
}

fn set_enabled(service: &Service, enabled: bool) {
    service.obs_registry().set_enabled(enabled);
    Registry::global().set_enabled(enabled);
}

/// Times `iters` calls of `f`, returning ns per call.
fn sample(iters: u32, f: &mut impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Interleaved paired sampling: every round produces one sample of each
/// variant, taken back to back, with the order swapped between rounds.
/// Returns the per-round samples of both plus the per-round ratio b/a.
fn paired_run(
    rounds: usize,
    a: &mut impl FnMut() -> f64,
    b: &mut impl FnMut() -> f64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let (mut a_ns, mut b_ns, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
    for round in 0..rounds {
        let (ta, tb) = if round % 2 == 0 {
            let ta = a();
            (ta, b())
        } else {
            let tb = b();
            (a(), tb)
        };
        a_ns.push(ta);
        b_ns.push(tb);
        ratios.push(tb / ta);
    }
    (a_ns, b_ns, ratios)
}

/// Publishes one sample vector under `metrics_overhead/<name>`.
fn record(name: &str, samples: &mut [f64]) {
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    record_external(
        &format!("metrics_overhead/{name}"),
        BenchRecord {
            median_ns: samples[samples.len() / 2],
            mean_ns: mean,
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
        },
    );
}

/// Converts paired ratios into overhead percentages, floored at 1% so the
/// baseline-ratio gate in CI stays stable when the true overhead is near
/// (or below) zero — a 0.1% → 0.4% swing is runner noise, not a
/// regression, and must not trip a 3× ratio check.
fn overhead_pct(ratios: &[f64]) -> Vec<f64> {
    ratios
        .iter()
        .map(|r| ((r - 1.0) * 100.0).max(1.0))
        .collect()
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    let service = seeded_service();
    const QUERY: &str = "QUERY CERTAIN edge";

    // read path, spans enabled vs disabled — paired, interleaved
    let (mut on, mut off, _) = paired_run(
        ROUNDS,
        &mut || {
            set_enabled(&service, true);
            sample(100, &mut || {
                black_box(service.execute(QUERY).expect("query"));
            })
        },
        &mut || {
            set_enabled(&service, false);
            sample(100, &mut || {
                black_box(service.execute(QUERY).expect("query"));
            })
        },
    );
    record("query_on", &mut on);
    record("query_off", &mut off);

    let (mut on, mut off, _) = paired_run(
        ROUNDS,
        &mut || {
            set_enabled(&service, true);
            sample(10_000, &mut || {
                black_box(service.snapshot().epoch());
            })
        },
        &mut || {
            set_enabled(&service, false);
            sample(10_000, &mut || {
                black_box(service.snapshot().epoch());
            })
        },
    );
    record("snapshot_on", &mut on);
    record("snapshot_off", &mut off);
    set_enabled(&service, true);

    // PROFILE vs QUERY on the same hypothetical closure — the paired
    // per-round delta is the record CI gates (<5% acceptance, published
    // as a percentage)
    let query_tc = format!("QUERY {TC}");
    let profile_tc = format!("PROFILE {TC}");
    let (mut q, mut p, ratios) = paired_run(
        ROUNDS,
        &mut || {
            sample(4, &mut || {
                black_box(service.execute(&query_tc).expect("query"));
            })
        },
        &mut || {
            sample(4, &mut || {
                black_box(service.execute(&profile_tc).expect("profile"));
            })
        },
    );
    record("query_transform", &mut q);
    record("profile_transform", &mut p);
    record("profile_overhead", &mut overhead_pct(&ratios));

    // primitive costs, on a private registry
    let registry = Registry::new();
    let counter = registry.counter("bench_counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = registry.histogram("bench_hist_ns");
    group.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(1234)))
    });
    group.bench_function("span_enabled", |b| b.iter(|| drop(hist.span())));
    registry.set_enabled(false);
    group.bench_function("span_disabled", |b| b.iter(|| drop(hist.span())));

    group.finish();
}

criterion_group!(name = metrics; config = quick_criterion(); targets = benches);
criterion_main!(metrics);
