//! `metrics_overhead` — what the observability layer costs on the serving
//! read path, and what its primitives cost in isolation.
//!
//! The acceptance bar is that instrumentation stays under 5% on the
//! `service_throughput` read path: `snapshot_on` / `snapshot_off` and
//! `query_on` / `query_off` run the identical workload with the timing
//! spans enabled (the default) and disabled, so the recorded medians make
//! the overhead directly comparable.  Counters record in both settings by
//! design — only clock reads are gated — which is why the `_off` variants
//! are not a zero-instrumentation baseline but the documented
//! "disabled" cost model (one relaxed load per span site).
//!
//! The primitive benches (`counter_inc`, `histogram_record`,
//! `span_enabled`, `span_disabled`) pin the per-operation costs the crate
//! docs of `kbt-obs` promise.
//!
//! Run with `KBT_BENCH_JSON=BENCH_service.json` to record the medians.

use kbt_bench::criterion::{black_box, criterion_group, criterion_main, Criterion};
use kbt_bench::quick_criterion;
use kbt_obs::Registry;
use kbt_service::{Service, ServiceConfig};

/// Chain length of the seeded graph (same shape as `service_throughput`).
const EDGES: u32 = 100;

fn seeded_service() -> Service {
    let service = Service::new(ServiceConfig::default());
    for i in 0..EDGES {
        service
            .execute(&format!("ASSERT edge({i}, {})", i + 1))
            .expect("assert");
    }
    service
}

fn set_enabled(service: &Service, enabled: bool) {
    service.obs_registry().set_enabled(enabled);
    Registry::global().set_enabled(enabled);
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_overhead");
    let service = seeded_service();
    const QUERY: &str = "QUERY CERTAIN edge";

    // timing spans enabled — the default serving configuration
    group.bench_function("snapshot_on", |b| {
        b.iter(|| black_box(service.snapshot().epoch()))
    });
    group.bench_function("query_on", |b| {
        b.iter(|| black_box(service.execute(QUERY).expect("query")))
    });

    // timing spans disabled — every span site degrades to one relaxed load
    set_enabled(&service, false);
    group.bench_function("snapshot_off", |b| {
        b.iter(|| black_box(service.snapshot().epoch()))
    });
    group.bench_function("query_off", |b| {
        b.iter(|| black_box(service.execute(QUERY).expect("query")))
    });
    set_enabled(&service, true);

    // primitive costs, on a private registry
    let registry = Registry::new();
    let counter = registry.counter("bench_counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = registry.histogram("bench_hist_ns");
    group.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(1234)))
    });
    group.bench_function("span_enabled", |b| b.iter(|| drop(hist.span())));
    registry.set_enabled(false);
    group.bench_function("span_disabled", |b| b.iter(|| drop(hist.span())));

    group.finish();
}

criterion_group!(name = metrics; config = quick_criterion(); targets = benches);
criterion_main!(metrics);
