//! Experiment E10 — fixpoint queries through the transformation language.
//!
//! Ablation of the design choice DESIGN.md calls out: the same transitive
//! closure query evaluated (a) by the Datalog least-fixpoint fast path of
//! Theorem 4.8, (b) by the general SAT-based grounding evaluator on the
//! paper's original (non-Horn) sentence, and (c) by the Datalog engine called
//! directly, without the transformation layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::examples::transitive_closure;
use kbt_core::{EvalOptions, Strategy, Transformer};
use kbt_data::RelId;
use kbt_datalog::{program_from_sentence, semi_naive_eval};
use kbt_reductions::workload::chain_graph;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

fn datalog_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixpoint/datalog_fast_path");
    let t = Transformer::with_options(EvalOptions::with_strategy(Strategy::Datalog));
    for n in [8u32, 16, 32, 64] {
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (i, i + 1)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| transitive_closure::transitive_closure_horn(&t, &edges).unwrap());
        });
    }
    group.finish();
}

fn general_grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixpoint/general_grounding");
    let t = Transformer::with_options(EvalOptions::with_strategy(Strategy::Grounding));
    for n in [3u32, 4, 5] {
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (i, i + 1)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| transitive_closure::transitive_closure(&t, &edges).unwrap());
        });
    }
    group.finish();
}

fn datalog_engine_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixpoint/datalog_engine_direct");
    let program = program_from_sentence(&transitive_closure::sentence_horn()).unwrap();
    for n in [8u32, 16, 32, 64] {
        let edb = chain_graph(r(1), n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| semi_naive_eval(&program, &edb).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = datalog_fast_path, general_grounding, datalog_engine_direct
}
criterion_main!(benches);
