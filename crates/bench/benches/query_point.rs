//! Point-query strategies over a 10 000-edge transitive closure.
//!
//! The workload is the braid graph of `engine_parallel` (1 000 disjoint
//! 10-edge chains), closed transitively; the query is the bound goal
//! `path(1, x)` — one chain's worth of answers out of 55 000 derived
//! facts.  Three strategies, matching the service's `strategy=` taxonomy:
//!
//! * `query_point/materialize` — the oracle: evaluate the full fixpoint,
//!   then filter the answer relation on the bound column.  Pays for all
//!   1 000 chains to answer about one.
//! * `query_point/magic` — rewrite the program around the `bf` pattern
//!   with magic sets, seed the demand, evaluate, filter.  Only the
//!   reachable chain is ever derived, so a point query lands in
//!   microseconds where materialization takes milliseconds — the ≥10×
//!   separation `bench_compare` gates on.
//! * `query_point/tabled` — the subsumptive-table hit path: the answer is
//!   already memoized (here under the same `bf` pattern), so the query is
//!   one packed-key lookup plus the residual filter.
//!
//! Set `KBT_BENCH_JSON=BENCH_engine.json` to record the medians
//! machine-readably (CI does).

use criterion::{criterion_group, criterion_main, Criterion};
use kbt_bench::quick_criterion;
use kbt_data::{Const, Database, DatabaseBuilder, RelId, Tuple};
use kbt_datalog::{magic_rewrite, semi_naive_eval_threads, DlAtom, Literal, Program, Rule};
use kbt_engine::table::{filter_rows, SubsumptiveTable};
use kbt_logic::builder::{cst, var};

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
fn tc_program() -> Program {
    let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
    let path = |a, b| DlAtom::new(r(2), vec![a, b]);
    Program::new(vec![
        Rule::new(
            path(var(1), var(2)),
            vec![Literal::positive(edge(var(1), var(2)))],
        ),
        Rule::new(
            path(var(1), var(3)),
            vec![
                Literal::positive(path(var(1), var(2))),
                Literal::positive(edge(var(2), var(3))),
            ],
        ),
    ])
    .unwrap()
}

/// `chains` disjoint chains of 10 edges each: `10 * chains` edges total.
fn braid(chains: u32) -> Database {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for c in 0..chains {
        let base = c * 11 + 1;
        for i in 0..10 {
            b = b.fact(r(1), [base + i, base + i + 1]);
        }
    }
    b.build().unwrap()
}

fn bench_point_query(c: &mut Criterion) {
    let program = tc_program();
    let edb = braid(1_000); // 10 000 edges, 55 000 closure facts
    let path = r(2);
    let bound = [(0usize, Const::new(1))];
    let terms = vec![cst(1), var(50)];

    let mut group = c.benchmark_group("query_point");

    group.bench_function("materialize", |b| {
        b.iter(|| {
            let (db, _) = semi_naive_eval_threads(&program, &edb, 1).unwrap();
            filter_rows(db.relation(path).unwrap(), &bound)
        });
    });

    group.bench_function("magic", |b| {
        b.iter(|| {
            let plan = magic_rewrite(&program, path, &terms, 100).unwrap();
            let mut seeded = edb.clone();
            for (seed_rel, consts) in &plan.seeds {
                seeded
                    .insert_fact(*seed_rel, Tuple::new(consts.clone()))
                    .unwrap();
            }
            let (db, _) = semi_naive_eval_threads(&plan.program, &seeded, 1).unwrap();
            filter_rows(db.relation(plan.answer).unwrap(), &bound)
        });
    });

    // the table-hit path: memoize once, then every query is a lookup
    let plan = magic_rewrite(&program, path, &terms, 100).unwrap();
    let mut seeded = edb.clone();
    for (seed_rel, consts) in &plan.seeds {
        seeded
            .insert_fact(*seed_rel, Tuple::new(consts.clone()))
            .unwrap();
    }
    let (db, _) = semi_naive_eval_threads(&plan.program, &seeded, 1).unwrap();
    let answer = filter_rows(db.relation(plan.answer).unwrap(), &bound);
    let mut table = SubsumptiveTable::new();
    table.insert(0, path.index(), &bound, answer);
    group.bench_function("tabled", |b| {
        b.iter(|| table.lookup(0, path.index(), &bound).unwrap());
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_point_query
}
criterion_main!(benches);
