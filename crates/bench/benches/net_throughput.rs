//! `net_throughput` — round-trips over the TCP front, under a committing
//! writer.
//!
//! The read benches run **while a background writer keeps committing over
//! its own TCP connection** — toggling an edge and incrementally
//! re-applying the registered closure refresh — so the numbers measure
//! what a remote reader actually pays mid-commit-stream.  The interesting
//! comparison is against `service_throughput`: the same operations
//! in-process cost nanoseconds-to-microseconds; the deltas here are the
//! price of the socket, the framing layer and a session worker.
//!
//! * `stats_roundtrip` — minimal request/response latency (one command,
//!   small payload).
//! * `query_certain_edge_roundtrip` — one QUERY with a 100-fact payload.
//! * `pipelined_query_x64` — 64 QUERYs written back-to-back, then 64
//!   responses read: the per-iteration time divided by 64 is the marginal
//!   cost of a pipelined command (the protocol never blocks a batch on a
//!   per-command round-trip).
//! * `commit_assert_retract` — the serialized write pipeline over the
//!   wire (two commits per iteration).
//!
//! Run with `KBT_BENCH_JSON=BENCH_net.json` to record the medians (CI
//! uploads them with the bench-trajectory artifact and diffs them against
//! the committed baselines).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kbt_bench::criterion::{black_box, criterion_group, criterion_main, Criterion};
use kbt_bench::quick_criterion;
use kbt_service::net::{Client, NetConfig, NetServer};
use kbt_service::{Service, ServiceConfig};

/// Seed chain length (the closure then holds ~EDGES²/2 reach facts).
const EDGES: u32 = 100;

const DEFINE: &str = "DEFINE refresh := project[edge]; \
     tau[(forall x0 x1. edge(x0, x1) -> reach(x0, x1)) & \
         (forall x0 x1 x2. reach(x0, x1) & edge(x1, x2) -> reach(x0, x2))]";

/// A served network front over a chain graph and its committed closure.
fn seeded_server() -> (NetServer, SocketAddr) {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service.execute(DEFINE).expect("define");
    for i in 0..EDGES {
        service
            .execute(&format!("ASSERT edge({i}, {})", i + 1))
            .expect("assert");
    }
    service.execute("APPLY refresh").expect("apply");
    let server = NetServer::start(service, NetConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    (server, addr)
}

/// The committing writer: its own TCP client toggling one edge and
/// re-applying the refresh until stopped.
struct Churn {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl Churn {
    fn start(addr: SocketAddr) -> Churn {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("churn connect");
            let mut commits = 0u64;
            let mut run = |cmd: &str| {
                let r = client.roundtrip(cmd).expect("churn round-trip");
                assert!(r.is_ok(), "churn command failed: {}", r.status);
            };
            while !flag.load(Ordering::Relaxed) {
                run(&format!("ASSERT edge({EDGES}, {})", EDGES + 1));
                run("APPLY refresh");
                run(&format!("RETRACT edge({EDGES}, {})", EDGES + 1));
                run("APPLY refresh");
                commits += 4;
            }
            commits
        });
        Churn {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the writer and returns how many commits it made — the read
    /// benches assert this is non-zero, so "measured under a live writer"
    /// is a checked claim, not a hope.
    fn finish(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("finish is called once")
            .join()
            .expect("churn writer must not panic")
    }
}

impl Drop for Churn {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn bench_read_path(c: &mut Criterion) {
    let (_server, addr) = seeded_server();
    let mut group = c.benchmark_group("net_throughput");

    {
        let churn = Churn::start(addr);
        let mut client = Client::connect(addr).expect("connect");

        group.bench_function("stats_roundtrip", |b| {
            b.iter(|| {
                let r = client.roundtrip("STATS").expect("round-trip");
                assert!(r.is_ok(), "{}", r.status);
                black_box(r.data.len())
            })
        });

        group.bench_function("query_certain_edge_roundtrip", |b| {
            b.iter(|| {
                let r = client.roundtrip("QUERY CERTAIN edge").expect("round-trip");
                assert!(r.is_ok(), "{}", r.status);
                black_box(r.data.len())
            })
        });

        group.bench_function("pipelined_query_x64", |b| {
            b.iter(|| {
                for _ in 0..64 {
                    client.send("QUERY CERTAIN edge").expect("send");
                }
                let mut lines = 0usize;
                for _ in 0..64 {
                    let r = client.recv().expect("recv");
                    assert!(r.is_ok(), "{}", r.status);
                    lines += r.data.len();
                }
                black_box(lines)
            })
        });

        let commits = churn.finish();
        assert!(commits > 0, "the writer must have been committing");
    }

    group.finish();
}

fn bench_write_path(c: &mut Criterion) {
    let (_server, addr) = seeded_server();
    let mut group = c.benchmark_group("net_throughput");

    {
        let mut client = Client::connect(addr).expect("connect");
        let mut i = 0u32;
        group.bench_function("commit_assert_retract", |b| {
            b.iter(|| {
                i += 1;
                let r = client
                    .roundtrip(&format!("ASSERT probe({i})"))
                    .expect("assert");
                assert!(r.is_ok(), "{}", r.status);
                let r = client
                    .roundtrip(&format!("RETRACT probe({i})"))
                    .expect("retract");
                assert!(r.is_ok(), "{}", r.status);
            })
        });
    }

    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_read_path(c);
    bench_write_path(c);
}

criterion_group!(name = net; config = quick_criterion(); targets = benches);
criterion_main!(net);
