//! Experiment E9 — Theorem 5.2: evaluating an ST block through the
//! transformation engine versus through its second-order translation
//! (brute-force SO model checking over tiny domains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::Transformer;
use kbt_data::{Database, DatabaseBuilder, RelId};
use kbt_logic::builder::*;
use kbt_logic::Sentence;
use kbt_reductions::so::translate_block;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

fn db_with_chain(n: u32) -> Database {
    let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(2), 2);
    for i in 1..n {
        b = b.fact(r(1), [i, i + 1]);
    }
    b.build().unwrap()
}

fn symmetric_closure_sentence() -> Sentence {
    Sentence::new(forall(
        [1, 2],
        implies(atom(1, [var(1), var(2)]), atom(2, [var(2), var(1)])),
    ))
    .unwrap()
}

fn via_transformation(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm52/via_transformation");
    let t = Transformer::new();
    for n in [2u32, 3] {
        let db = db_with_chain(n);
        let query = translate_block(symmetric_closure_sentence(), &db, r(2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| query.evaluate_via_transformation(&t, &db).unwrap());
        });
    }
    group.finish();
}

fn via_second_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm52/via_second_order");
    for n in [2u32, 3] {
        let db = db_with_chain(n);
        let query = translate_block(symmetric_closure_sentence(), &db, r(2));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| query.evaluate_brute_force(&db));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = via_transformation, via_second_order
}
criterion_main!(benches);
