//! Experiment E1 — the data-complexity column of the Section 4 table.
//!
//! For each transformation class the sentence is held fixed while the
//! database grows; the measured growth should be polynomial for the PTIME
//! fragments (quantifier-free, Datalog-restricted) and markedly steeper for
//! the general single-`τ` class and for composed Θ expressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::{EvalOptions, Strategy, Transform, Transformer};
use kbt_data::{Knowledgebase, RelId};
use kbt_logic::builder::*;
use kbt_logic::Sentence;
use kbt_reductions::workload::{chain_graph, random_set};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// Row 1: a general (non-Horn, quantified) single insertion, co-NP class.
fn general_tau(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/general_tau");
    // "make R1 irreflexive" forces deletions and explores candidate flips
    let phi = Sentence::new(forall([1], not(atom(1, [var(1), var(1)])))).unwrap();
    for n in [2u32, 3, 4, 5] {
        let mut db = chain_graph(r(1), n);
        for i in 1..=n {
            db.insert_fact(r(1), kbt_data::tuple![i, i]).unwrap();
        }
        let kb = Knowledgebase::singleton(db);
        let t = Transformer::with_options(EvalOptions::with_strategy(Strategy::Grounding));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| t.insert(&phi, &kb).unwrap());
        });
    }
    group.finish();
}

/// Row 2: a composed Θ expression (τ then ⊔ then τ then π), PSPACE class.
fn composed_theta(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/composed_theta");
    let copy = Sentence::new(forall(
        [1, 2],
        implies(atom(1, [var(1), var(2)]), atom(2, [var(1)])),
    ))
    .unwrap();
    let require = Sentence::new(exists(
        [1],
        and(atom(2, [var(1)]), not(atom(1, [var(1), var(1)]))),
    ))
    .unwrap();
    let expr = Transform::insert(copy)
        .then(Transform::Lub)
        .then(Transform::insert(require))
        .then(Transform::project(vec![r(2)]));
    for n in [2u32, 3, 4] {
        let kb = Knowledgebase::singleton(chain_graph(r(1), n));
        let t = Transformer::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| t.apply(&expr, &kb).unwrap());
        });
    }
    group.finish();
}

/// Row 3: the quantifier-free fragment Θ₀ (PTIME, Theorem 4.7).
fn quantifier_free(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/quantifier_free");
    let phi = Sentence::new(or(
        and(atom(1, [cst(1001)]), not(atom(1, [cst(1002)]))),
        atom(1, [cst(1003)]),
    ))
    .unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    for n in [50u32, 200, 800, 3200] {
        let db = random_set(r(1), n, n as usize / 2, &mut rng);
        let kb = Knowledgebase::singleton(db);
        let t = Transformer::with_options(EvalOptions::with_strategy(Strategy::QuantifierFree));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| t.insert(&phi, &kb).unwrap());
        });
    }
    group.finish();
}

/// Row 4: the Datalog-restricted fragment (PTIME, Theorem 4.8).
fn datalog_restricted(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/datalog_restricted");
    let phi = kbt_core::examples::transitive_closure::sentence_horn();
    for n in [10u32, 20, 40, 80] {
        let kb = Knowledgebase::singleton(chain_graph(r(1), n));
        let t = Transformer::with_options(EvalOptions::with_strategy(Strategy::Datalog));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| t.insert(&phi, &kb).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = general_tau, composed_theta, quantifier_free, datalog_restricted
}
criterion_main!(benches);
