//! Experiment E7 — the special cases of Section 4.3: PTIME data complexity
//! for quantifier-free and Datalog-restricted transformations (Theorems 4.7
//! and 4.8), and the expression-side hardness of the quantifier-free
//! fragment (Theorem 4.9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::{EvalOptions, Strategy, Transformer};
use kbt_data::{Knowledgebase, RelId};
use kbt_logic::builder::*;
use kbt_logic::Sentence;
use kbt_reductions::propsat::{satisfiable_via_transformation, Prop};
use kbt_reductions::workload::{chain_graph, random_set};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// Theorem 4.7: the quantifier-free evaluator scales linearly in the
/// database, with the 2^k assignment enumeration fixed by the sentence.
fn thm47_quantifier_free_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("special/thm47_qf_data_scaling");
    let phi = Sentence::new(and(
        or(atom(1, [cst(9001)]), atom(1, [cst(9002)])),
        not(atom(1, [cst(9003)])),
    ))
    .unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let t = Transformer::with_options(EvalOptions::with_strategy(Strategy::QuantifierFree));
    for n in [100u32, 400, 1600] {
        let kb = Knowledgebase::singleton(random_set(r(1), n, (n / 2) as usize, &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| t.insert(&phi, &kb).unwrap());
        });
    }
    group.finish();
}

/// Theorem 4.8: the Datalog fast path computes least fixpoints in PTIME.
fn thm48_datalog_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("special/thm48_datalog_data_scaling");
    let phi = kbt_core::examples::transitive_closure::sentence_horn();
    let t = Transformer::with_options(EvalOptions::with_strategy(Strategy::Datalog));
    for n in [16u32, 32, 64, 128] {
        let kb = Knowledgebase::singleton(chain_graph(r(1), n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| t.insert(&phi, &kb).unwrap());
        });
    }
    group.finish();
}

/// Theorem 4.9: expression complexity of the quantifier-free fragment —
/// random propositional formulas of growing size over a fixed database.
fn thm49_expression_hardness(c: &mut Criterion) {
    let mut group = c.benchmark_group("special/thm49_qf_expression_scaling");
    let t = Transformer::new();
    let mut rng = StdRng::seed_from_u64(23);
    for size in [6usize, 10, 14] {
        let prop = Prop::random(size as u32 / 2 + 1, size, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| satisfiable_via_transformation(&t, &prop).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = thm47_quantifier_free_scaling, thm48_datalog_scaling, thm49_expression_hardness
}
criterion_main!(benches);
