//! Experiment E2 — the cost of checking the Katsuno–Mendelzon postulates
//! (Theorem 2.1) on random knowledgebases of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::{postulates, EvalOptions};
use kbt_data::RelId;
use kbt_logic::builder::*;
use kbt_logic::Sentence;
use kbt_reductions::workload::random_knowledgebase;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

fn check_all_postulates(c: &mut Criterion) {
    let mut group = c.benchmark_group("postulates/check_all");
    let mut rng = StdRng::seed_from_u64(101);
    let phi = Sentence::new(or(atom(1, [cst(1)]), atom(1, [cst(2)]))).unwrap();
    let psi = Sentence::new(not(atom(1, [cst(3)]))).unwrap();
    for worlds in [1usize, 2, 4] {
        let kb1 = random_knowledgebase(r(1), 4, worlds, 2, &mut rng);
        let kb2 = random_knowledgebase(r(1), 4, worlds, 2, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(worlds), &worlds, |b, _| {
            b.iter(|| {
                let report =
                    postulates::check_all(&phi, &psi, &kb1, &kb2, &EvalOptions::default()).unwrap();
                assert!(report.all_hold());
                report
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = check_all_postulates
}
criterion_main!(benches);
