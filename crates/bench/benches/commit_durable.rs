//! `commit_durable` — the durability cost ledger for the commit pipeline.
//!
//! Three series, all recorded into `BENCH_service.json`:
//!
//! * `commit_pair_memory` — an in-memory ASSERT/RETRACT pair on a service
//!   with **no** durability configured.  The WAL hooks sit on the hot
//!   commit path (one `OnceLock` load when disabled), so this is the
//!   regression guard proving durable commits cost the in-memory caller
//!   nothing (CI gates it via `bench_compare --fail-on`).
//! * `fsync_always_4writers` — per-commit cost with 4 concurrent writers
//!   under [`FsyncPolicy::Always`]: every commit pays its own fsync.
//! * `group_commit_4writers` — the same workload under group commit: one
//!   leader flushes the whole appended tail, concurrent committers ride
//!   along.  The run **asserts** the group-commit throughput is at least
//!   2× the per-commit-fsync policy's — the claim that batching works is
//!   checked here, not hoped for.
//!
//! Run with `KBT_BENCH_JSON=BENCH_service.json` to record the medians.

use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use kbt_bench::criterion::{
    black_box, criterion_group, criterion_main, record_external, BenchRecord, Criterion,
};
use kbt_bench::quick_criterion;
use kbt_service::{DurabilityConfig, FsyncPolicy, Service, ServiceConfig};

const WRITERS: usize = 4;
const COMMITS_PER_WRITER: usize = 50;
const ROUNDS: usize = 5;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kbt-bench-durable-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_commit_pair(c: &mut Criterion) {
    let service = Service::new(ServiceConfig::default());
    service.execute("ASSERT edge(1, 2)").expect("seed");
    let mut group = c.benchmark_group("commit_durable");
    group.bench_function("commit_pair_memory", |b| {
        b.iter(|| {
            black_box(service.execute("ASSERT edge(2, 3)").expect("assert"));
            black_box(service.execute("RETRACT edge(2, 3)").expect("retract"));
        })
    });
    group.finish();
}

/// Runs `WRITERS` threads each committing `COMMITS_PER_WRITER` distinct
/// facts against a fresh durable service, and returns the per-commit cost
/// in nanoseconds for one round.
fn writers_round(name: &str, round: usize, policy: FsyncPolicy) -> f64 {
    let dir = scratch_dir(&format!("{name}-{round}"));
    let service = Service::open(
        ServiceConfig::builder()
            .threads(1)
            .durability(Some(DurabilityConfig {
                data_dir: dir.clone(),
                fsync_policy: policy,
                checkpoint_every_n_commits: 0,
            }))
            .build(),
    )
    .expect("open durable service");
    let service = Arc::new(service);
    let barrier = Arc::new(Barrier::new(WRITERS + 1));
    let workers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let service = service.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..COMMITS_PER_WRITER {
                    service
                        .execute(&format!("ASSERT edge({}, {})", w * 1000 + i, i))
                        .expect("durable commit");
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for worker in workers {
        worker.join().expect("writer must not panic");
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    let _ = std::fs::remove_dir_all(&dir);
    elapsed / (WRITERS * COMMITS_PER_WRITER) as f64
}

/// Medians over `ROUNDS` rounds, published via [`record_external`].
fn writers_series(name: &str, policy: FsyncPolicy) -> BenchRecord {
    let mut samples: Vec<f64> = (0..ROUNDS)
        .map(|round| writers_round(name, round, policy.clone()))
        .collect();
    samples.sort_by(f64::total_cmp);
    let record = BenchRecord {
        median_ns: samples[samples.len() / 2],
        mean_ns: samples.iter().sum::<f64>() / samples.len() as f64,
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    };
    record_external(&format!("commit_durable/{name}"), record);
    println!(
        "commit_durable/{name:<43} time: [{:.0} ns {:.0} ns {:.0} ns] per commit",
        record.min_ns, record.median_ns, record.max_ns
    );
    record
}

fn bench_group_commit(_c: &mut Criterion) {
    let always = writers_series("fsync_always_4writers", FsyncPolicy::Always);
    let grouped = writers_series("group_commit_4writers", FsyncPolicy::group_commit());
    // the batching claim, checked: 4 concurrent writers under group commit
    // must clear at least twice the per-commit-fsync throughput
    assert!(
        grouped.median_ns * 2.0 <= always.median_ns,
        "group commit under {WRITERS} writers must be >= 2x per-commit fsync \
         (group {:.0} ns/commit vs always {:.0} ns/commit)",
        grouped.median_ns,
        always.median_ns
    );
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_commit_pair, bench_group_commit
}
criterion_main!(benches);
