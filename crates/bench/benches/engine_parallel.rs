//! Parallel semi-naive evaluation — 1 / 2 / 4-thread scaling.
//!
//! Two workloads, both at 10 000 base edges over braid graphs (disjoint
//! 10-edge chains — the closure grows linearly with the edge count, so the
//! signal is join and round cost, not output blow-up):
//!
//! * `engine_parallel/tc10k` — one-shot transitive closure through the
//!   engine's semi-naive evaluator at widths 1, 2 and 4.  Width 1 is the
//!   exact sequential code path (the baseline every other width must match
//!   byte-for-byte); wider runs fan each round's chunked driving scans out
//!   over the `kbt-par` pool.
//! * `engine_parallel/chain10k` — the 20-step incremental
//!   `(π ∘ τ_TC ∘ τ_fact)*` chain of `chain_incremental`, with the engine
//!   width set through `EvalOptions::threads`.
//!
//! Set `KBT_BENCH_JSON=BENCH_parallel.json` to record the medians
//! machine-readably (CI does).  Note that scaling requires physical cores:
//! on a single-core host the >1-thread numbers only measure coordination
//! overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::{EvalOptions, Transform, Transformer};
use kbt_data::{Database, DatabaseBuilder, Knowledgebase, RelId};
use kbt_datalog::{semi_naive_eval_threads, DlAtom, Literal, Program, Rule};
use kbt_logic::builder::*;
use kbt_logic::Sentence;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
fn tc_program() -> Program {
    let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
    let path = |a, b| DlAtom::new(r(2), vec![a, b]);
    Program::new(vec![
        Rule::new(
            path(var(1), var(2)),
            vec![Literal::positive(edge(var(1), var(2)))],
        ),
        Rule::new(
            path(var(1), var(3)),
            vec![
                Literal::positive(path(var(1), var(2))),
                Literal::positive(edge(var(2), var(3))),
            ],
        ),
    ])
    .unwrap()
}

/// `chains` disjoint chains of 10 edges each: `10 * chains` edges total.
fn braid(chains: u32) -> Database {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for c in 0..chains {
        let base = c * 11 + 1;
        for i in 0..10 {
            b = b.fact(r(1), [base + i, base + i + 1]);
        }
    }
    b.build().unwrap()
}

/// R2 := transitive closure of R1, as a Horn sentence (Theorem 4.8 shape).
fn tc_sentence() -> Sentence {
    Sentence::new(and(
        forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ),
        forall(
            [1, 2, 3],
            implies(
                and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                atom(2, [var(1), var(3)]),
            ),
        ),
    ))
    .unwrap()
}

/// The 20-step chain: grow one edge, close transitively, project back.
fn chain_expression(steps: u32) -> Transform {
    let mut expr = Transform::Identity;
    for i in 0..steps {
        let grow = Sentence::new(atom(1, [cst(1_000_000 + i), cst(1_000_001 + i)])).unwrap();
        expr = expr
            .then(Transform::insert(grow))
            .then(Transform::insert(tc_sentence()))
            .then(Transform::project([r(1)]));
    }
    expr
}

const WIDTHS: [usize; 3] = [1, 2, 4];

fn bench_tc_widths(c: &mut Criterion) {
    let program = tc_program();
    let edb = braid(1_000); // 10 000 edges
    let mut group = c.benchmark_group("engine_parallel/tc10k");
    for threads in WIDTHS {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| semi_naive_eval_threads(&program, &edb, threads).unwrap());
            },
        );
    }
    group.finish();
}

fn bench_chain_widths(c: &mut Criterion) {
    let expr = chain_expression(20);
    let kb = Knowledgebase::singleton(braid(1_000));
    let mut group = c.benchmark_group("engine_parallel/chain10k");
    for threads in WIDTHS {
        let transformer = Transformer::with_options(EvalOptions {
            threads,
            ..EvalOptions::default()
        });
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| transformer.apply(&expr, &kb).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_tc_widths, bench_chain_widths,
}
criterion_main!(benches);
