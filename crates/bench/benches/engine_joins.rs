//! Engine ablation — naive vs semi-naive vs indexed fixpoint evaluation.
//!
//! Transitive closure over "braid" graphs (disjoint chains of length 10, so
//! the closure grows linearly with the edge count and the interesting signal
//! is join cost, not output size) at 100 / 1 000 / 10 000 edges:
//!
//! * `reference_naive` — the seed's nested-loop naive evaluator (oracle);
//! * `reference_semi_naive` — the seed's nested-loop semi-naive evaluator,
//!   the baseline the indexed engine is measured against;
//! * `engine_naive` — engine rounds with index probes but full recompute;
//! * `engine_indexed` — the production path: delta-driven semi-naive rounds
//!   over hash-indexed storage.
//!
//! The slower configurations are capped at the sizes where a sample still
//! finishes in seconds; the indexed path runs everywhere.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::{alloc_counter, quick_criterion, record_alloc};
use kbt_data::{Database, DatabaseBuilder, RelId};
use kbt_datalog::{
    naive_eval, reference_naive_eval, reference_semi_naive_eval, semi_naive_eval, DlAtom, Literal,
    Program, Rule,
};
use kbt_logic::builder::var;

/// Counts heap traffic alongside the timings (see [`bench_alloc_counts`]).
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
fn tc_program() -> Program {
    let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
    let path = |a, b| DlAtom::new(r(2), vec![a, b]);
    Program::new(vec![
        Rule::new(
            path(var(1), var(2)),
            vec![Literal::positive(edge(var(1), var(2)))],
        ),
        Rule::new(
            path(var(1), var(3)),
            vec![
                Literal::positive(path(var(1), var(2))),
                Literal::positive(edge(var(2), var(3))),
            ],
        ),
    ])
    .unwrap()
}

/// `chains` disjoint chains of 10 edges each: `10 * chains` edges total,
/// closure of size `55 * chains`.
fn braid(chains: u32) -> Database {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for c in 0..chains {
        let base = c * 11 + 1;
        for i in 0..10 {
            b = b.fact(r(1), [base + i, base + i + 1]);
        }
    }
    b.build().unwrap()
}

fn edge_counts() -> [(u32, u32); 3] {
    // (chains, edges)
    [(10, 100), (100, 1_000), (1_000, 10_000)]
}

fn bench_reference_naive(c: &mut Criterion) {
    let program = tc_program();
    let mut group = c.benchmark_group("engine_joins/reference_naive");
    for (chains, edges) in edge_counts() {
        if edges > 100 {
            continue; // quadratic rescans per round: a single sample takes minutes
        }
        let edb = braid(chains);
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |b, _| {
            b.iter(|| reference_naive_eval(&program, &edb).unwrap());
        });
    }
    group.finish();
}

fn bench_reference_semi_naive(c: &mut Criterion) {
    let program = tc_program();
    let mut group = c.benchmark_group("engine_joins/reference_semi_naive");
    for (chains, edges) in edge_counts() {
        let edb = braid(chains);
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |b, _| {
            b.iter(|| reference_semi_naive_eval(&program, &edb).unwrap());
        });
    }
    group.finish();
}

fn bench_engine_naive(c: &mut Criterion) {
    let program = tc_program();
    let mut group = c.benchmark_group("engine_joins/engine_naive");
    for (chains, edges) in edge_counts() {
        if edges > 1_000 {
            continue; // full recompute per round is the point of this baseline
        }
        let edb = braid(chains);
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |b, _| {
            b.iter(|| naive_eval(&program, &edb).unwrap());
        });
    }
    group.finish();
}

fn bench_engine_indexed(c: &mut Criterion) {
    let program = tc_program();
    let mut group = c.benchmark_group("engine_joins/engine_indexed");
    for (chains, edges) in edge_counts() {
        let edb = braid(chains);
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |b, _| {
            b.iter(|| semi_naive_eval(&program, &edb).unwrap());
        });
    }
    group.finish();
}

/// Records the allocation count/volume of one indexed fixpoint run per size
/// as `engine_joins/alloc/engine_indexed/{edges}/{allocs,bytes}`.  With the
/// flat row arenas the join inner loop allocates nothing per probe, so
/// these counts scale with the *output* (derived facts), not with probes —
/// a regression back to per-tuple boxing multiplies them and warns in the
/// baseline comparison.
fn bench_alloc_counts(_c: &mut Criterion) {
    let program = tc_program();
    for (chains, edges) in edge_counts() {
        let edb = braid(chains);
        let _ = semi_naive_eval(&program, &edb).unwrap();
        alloc_counter::reset();
        let result = semi_naive_eval(&program, &edb).unwrap();
        let (allocs, bytes) = alloc_counter::snapshot();
        criterion::black_box(result);
        let name = format!("engine_joins/alloc/engine_indexed/{edges}");
        println!("{name:<60} allocs: {allocs}  bytes: {bytes}");
        record_alloc(&name, allocs, bytes);
    }
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets =
        bench_reference_naive,
        bench_reference_semi_naive,
        bench_engine_naive,
        bench_engine_indexed,
        bench_alloc_counts,
}
criterion_main!(benches);
