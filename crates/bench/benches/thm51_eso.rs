//! Experiment E8 — Theorem 5.1: existential second-order queries through the
//! ST1 encoding, against the brute-force second-order baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::Transformer;
use kbt_data::{Database, DatabaseBuilder, RelId};
use kbt_reductions::eso::{two_colourable_side_query, SecondOrderBaseline};

fn r(i: u32) -> RelId {
    RelId::new(i)
}

fn cycle(n: u32) -> Database {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for i in 1..=n {
        let j = if i == n { 1 } else { i + 1 };
        b = b.fact(r(1), [i, j]).fact(r(1), [j, i]);
    }
    b.build().unwrap()
}

fn via_st1(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm51/via_st1");
    let query = two_colourable_side_query(r(1), r(7), r(8));
    let t = Transformer::new();
    for n in [3u32, 4] {
        let db = cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| query.evaluate_via_st1(&t, &db).unwrap());
        });
    }
    group.finish();
}

fn via_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm51/via_brute_force");
    let query = two_colourable_side_query(r(1), r(7), r(8));
    for n in [3u32, 4, 5] {
        let db = cycle(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| SecondOrderBaseline::evaluate(&query, &db));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = via_st1, via_brute_force
}
criterion_main!(benches);
