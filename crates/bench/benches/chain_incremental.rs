//! Incremental `τ_φ`-chain evaluation vs from-scratch re-derivation.
//!
//! The workload is the chain shape the incremental session exists for: a
//! braid graph (disjoint 10-edge chains) of 100 / 1 000 / 10 000 edges, then
//! a 20-step `(π ∘ τ_TC ∘ τ_fact)*` expression — each step inserts one new
//! ground edge, re-derives the transitive closure into a fresh relation, and
//! projects back onto the edge relation.
//!
//! * `chain_incremental/from_scratch` — `EvalOptions::incremental = false`:
//!   every `τ_TC` step rebuilds the engine storage and re-derives the whole
//!   fixpoint.
//! * `chain_incremental/incremental` — the default path: one persistent
//!   `IncrementalSession` per chain; each step feeds the one-edge diff into
//!   the live fixpoint.
//!
//! Acceptance floor for this PR: ≥ 3× at 20 steps × 10 000 base facts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::{alloc_counter, quick_criterion, record_alloc};
use kbt_core::{EvalOptions, Transform, Transformer};
use kbt_data::{DatabaseBuilder, Knowledgebase, RelId};
use kbt_logic::builder::*;
use kbt_logic::Sentence;

/// Counts heap traffic alongside the timings (see [`bench_alloc_counts`]).
#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// R2 := transitive closure of R1, as a Horn sentence (Theorem 4.8 shape).
fn tc_sentence() -> Sentence {
    Sentence::new(and(
        forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ),
        forall(
            [1, 2, 3],
            implies(
                and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                atom(2, [var(1), var(3)]),
            ),
        ),
    ))
    .unwrap()
}

/// `chains` disjoint chains of 10 edges each: `10 * chains` edges total.
fn braid(chains: u32) -> Knowledgebase {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for c in 0..chains {
        let base = c * 11 + 1;
        for i in 0..10 {
            b = b.fact(r(1), [base + i, base + i + 1]);
        }
    }
    Knowledgebase::singleton(b.build().unwrap())
}

/// The 20-step chain: grow one edge, close transitively, project back.
fn chain_expression(steps: u32) -> Transform {
    let mut expr = Transform::Identity;
    for i in 0..steps {
        let grow = Sentence::new(atom(1, [cst(1_000_000 + i), cst(1_000_001 + i)])).unwrap();
        expr = expr
            .then(Transform::insert(grow))
            .then(Transform::insert(tc_sentence()))
            .then(Transform::project([r(1)]));
    }
    expr
}

fn edge_counts() -> [(u32, u32); 3] {
    // (chains, edges)
    [(10, 100), (100, 1_000), (1_000, 10_000)]
}

const STEPS: u32 = 20;

fn bench_from_scratch(c: &mut Criterion) {
    let expr = chain_expression(STEPS);
    let transformer = Transformer::with_options(EvalOptions {
        incremental: false,
        ..EvalOptions::default()
    });
    let mut group = c.benchmark_group("chain_incremental/from_scratch");
    for (chains, edges) in edge_counts() {
        let kb = braid(chains);
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |b, _| {
            b.iter(|| transformer.apply(&expr, &kb).unwrap());
        });
    }
    group.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let expr = chain_expression(STEPS);
    let transformer = Transformer::new();
    let mut group = c.benchmark_group("chain_incremental/incremental");
    for (chains, edges) in edge_counts() {
        let kb = braid(chains);
        group.bench_with_input(BenchmarkId::from_parameter(edges), &edges, |b, _| {
            b.iter(|| transformer.apply(&expr, &kb).unwrap());
        });
    }
    group.finish();
}

/// Records the allocation count/volume of one incremental chain run per
/// size as `chain_incremental/alloc/incremental/{edges}/{allocs,bytes}` —
/// the flat-row storage work shows up here as a step change, and any
/// per-tuple boxing that sneaks back in shows up as a warn in the baseline
/// comparison.  One warm-up run first, so lazily built engine state is not
/// billed to the measured run.
fn bench_alloc_counts(_c: &mut Criterion) {
    let expr = chain_expression(STEPS);
    let transformer = Transformer::new();
    for (chains, edges) in edge_counts() {
        let kb = braid(chains);
        let _ = transformer.apply(&expr, &kb).unwrap();
        alloc_counter::reset();
        let result = transformer.apply(&expr, &kb).unwrap();
        let (allocs, bytes) = alloc_counter::snapshot();
        criterion::black_box(result);
        let name = format!("chain_incremental/alloc/incremental/{edges}");
        println!("{name:<60} allocs: {allocs}  bytes: {bytes}");
        record_alloc(&name, allocs, bytes);
    }
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_from_scratch, bench_incremental, bench_alloc_counts,
}
criterion_main!(benches);
