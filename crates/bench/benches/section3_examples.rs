//! Experiment E4 — the seven worked transformations of Section 3, swept over
//! input size where the general-purpose evaluator allows it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::examples::{
    max_clique, monochromatic_triangle, parity, robots, transitive_closure, transitive_reduction,
};
use kbt_core::Transformer;

fn example_1_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("section3/example1_transitive_closure");
    let t = Transformer::new();
    for n in [3u32, 4, 5] {
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (i, i + 1)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| transitive_closure::transitive_closure(&t, &edges).unwrap());
        });
    }
    group.finish();
}

fn example_2_transitive_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("section3/example2_transitive_reductions");
    let t = Transformer::new();
    let graphs: Vec<(&str, Vec<(u32, u32)>)> = vec![
        ("shortcut_triangle", vec![(1, 2), (2, 3), (1, 3)]),
        ("two_cycle", vec![(1, 2), (2, 1)]),
    ];
    for (name, edges) in graphs {
        group.bench_function(name, |b| {
            b.iter(|| transitive_reduction::transitive_reductions(&t, &edges).unwrap());
        });
    }
    group.finish();
}

fn example_4_robots(c: &mut Criterion) {
    let t = Transformer::new();
    c.bench_function("section3/example4_robots_counterfactual", |b| {
        b.iter(|| robots::would_w_still_be_orbiting(&t).unwrap());
    });
}

fn example_5_monochromatic_triangle(c: &mut Criterion) {
    let t = Transformer::new();
    let triangle = vec![(1u32, 2u32), (2, 3), (1, 3)];
    c.bench_function("section3/example5_triangle_partition", |b| {
        b.iter(|| {
            monochromatic_triangle::has_monochromatic_triangle_free_partition(&t, &triangle)
                .unwrap()
        });
    });
}

fn example_6_parity(c: &mut Criterion) {
    let mut group = c.benchmark_group("section3/example6_parity");
    let t = Transformer::new();
    for n in [2u32, 3] {
        let set: Vec<u32> = (1..=n).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| parity::is_even(&t, &set).unwrap());
        });
    }
    group.finish();
}

fn example_7_max_clique(c: &mut Criterion) {
    let t = Transformer::new();
    let graph = vec![(1u32, 2u32), (2, 3), (1, 3)];
    c.bench_function("section3/example7_clique_of_size_3", |b| {
        b.iter(|| max_clique::has_clique_of_size(&t, &graph, 3).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = example_1_transitive_closure, example_2_transitive_reductions, example_4_robots,
              example_5_monochromatic_triangle, example_6_parity, example_7_max_clique
}
criterion_main!(benches);
