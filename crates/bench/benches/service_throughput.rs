//! `service_throughput` — the MVCC serving benchmark: concurrent readers
//! against a committing writer.
//!
//! The read-path benches (`snapshot`, `certain_reach`,
//! `query_hypothetical`) run **while a background writer keeps
//! committing** — asserting/retracting edges and incrementally re-applying
//! the registered closure refresh — so the numbers measure what a reader
//! actually pays mid-commit-stream, not on an idle service.  The
//! write-path benches (`commit_assert_retract`, `apply_refresh`) measure
//! the serialized commit pipeline itself, including the persistent
//! chain-session reuse across `APPLY`s.
//!
//! Run with `KBT_BENCH_JSON=BENCH_service.json` to record the medians
//! (CI uploads them with the bench-trajectory artifact).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kbt_bench::criterion::{black_box, criterion_group, criterion_main, Criterion};
use kbt_bench::quick_criterion;
use kbt_service::{Service, ServiceConfig};

/// Seed chain length (the closure then holds ~EDGES²/2 reach facts).
const EDGES: u32 = 100;

const DEFINE: &str = "DEFINE refresh := project[edge]; \
     tau[(forall x0 x1. edge(x0, x1) -> reach(x0, x1)) & \
         (forall x0 x1 x2. reach(x0, x1) & edge(x1, x2) -> reach(x0, x2))]";

/// A service holding a chain graph and its committed closure.
fn seeded_service() -> Arc<Service> {
    let service = Service::new(ServiceConfig::default());
    service.execute(DEFINE).expect("define");
    for i in 0..EDGES {
        service
            .execute(&format!("ASSERT edge({i}, {})", i + 1))
            .expect("assert");
    }
    service.execute("APPLY refresh").expect("apply");
    Arc::new(service)
}

/// Spawns the committing writer: toggle one edge and re-apply the refresh,
/// over and over, until finished.
struct Churn {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

impl Churn {
    fn start(service: Arc<Service>) -> Churn {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut commits = 0u64;
            while !flag.load(Ordering::Relaxed) {
                service
                    .execute(&format!("ASSERT edge({EDGES}, {})", EDGES + 1))
                    .expect("churn assert");
                service.execute("APPLY refresh").expect("churn apply");
                service
                    .execute(&format!("RETRACT edge({EDGES}, {})", EDGES + 1))
                    .expect("churn retract");
                service.execute("APPLY refresh").expect("churn apply");
                commits += 4;
            }
            commits
        });
        Churn {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the writer and returns how many commits it made — the read
    /// benches assert this is non-zero, so "measured under a live writer"
    /// is a checked claim, not a hope.
    fn finish(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("finish is called once")
            .join()
            .expect("churn writer must not panic")
    }
}

impl Drop for Churn {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn bench_read_path(c: &mut Criterion) {
    let service = seeded_service();
    let mut group = c.benchmark_group("service_throughput");

    {
        let churn = Churn::start(service.clone());
        group.bench_function("snapshot", |b| {
            b.iter(|| black_box(service.snapshot().epoch()))
        });
        group.bench_function("certain_reach", |b| {
            b.iter(|| {
                let snap = service.snapshot();
                let (rel, _) = snap.vocab().lookup_relation("reach").expect("committed");
                black_box(service.certain(&snap, rel).len())
            })
        });
        group.bench_function("query_hypothetical", |b| {
            b.iter(|| {
                black_box(
                    service
                        .execute("QUERY tau[edge(500, 501)]; lub; project[edge]")
                        .expect("query"),
                )
            })
        });
        let commits = churn.finish();
        assert!(commits > 0, "the writer must have been committing");
    }

    group.finish();
}

fn bench_write_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");

    {
        let service = seeded_service();
        let mut i = 0u32;
        group.bench_function("commit_assert_retract", |b| {
            b.iter(|| {
                i += 1;
                service
                    .execute(&format!("ASSERT probe({i})"))
                    .expect("assert");
                service
                    .execute(&format!("RETRACT probe({i})"))
                    .expect("retract");
            })
        });
    }

    {
        let service = seeded_service();
        let mut on = false;
        group.bench_function("apply_refresh", |b| {
            b.iter(|| {
                // toggle one edge so every APPLY advances a real delta
                on = !on;
                let cmd = if on { "ASSERT" } else { "RETRACT" };
                service
                    .execute(&format!("{cmd} edge({EDGES}, {})", EDGES + 1))
                    .expect("toggle");
                service.execute("APPLY refresh").expect("apply");
            })
        });
    }

    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_read_path(c);
    bench_write_path(c);
}

criterion_group!(name = service; config = quick_criterion(); targets = benches);
criterion_main!(service);
