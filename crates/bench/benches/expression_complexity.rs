//! Experiment E1 (second column) — expression complexity.
//!
//! The database is held fixed and tiny while the transformation expression
//! grows: the sentence size (Theorem 4.4 / 4.9) and the number of composed
//! operators (Theorem 4.6).  The growth is super-polynomial in the sentence
//! size for quantified sentences (each quantifier multiplies the grounding by
//! the domain size), which is the shape the paper's co-NEXPTIME / EXPSPACE
//! bounds allow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_core::{Transform, Transformer};
use kbt_data::{DatabaseBuilder, Knowledgebase, RelId};
use kbt_logic::builder::*;
use kbt_logic::{Formula, Sentence};
use kbt_reductions::propsat::{satisfiable_via_transformation, Prop};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// Growing quantifier prefix over a fixed two-element database.
fn quantifier_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("expression/quantifier_depth");
    let db = DatabaseBuilder::new()
        .fact(r(1), [1u32, 2])
        .fact(r(1), [2u32, 1])
        .build()
        .unwrap();
    let kb = Knowledgebase::singleton(db);
    let t = Transformer::new();
    for depth in [2u32, 4, 6, 8] {
        // ∀x1 ∃x2 ∀x3 … R1(x_{k-1}, x_k) ∨ R2(x_{k-1})
        let mut body: Formula = or(
            atom(1, [var(depth - 1), var(depth)]),
            atom(2, [var(depth - 1)]),
        );
        for i in (1..=depth).rev() {
            body = if i % 2 == 0 {
                Formula::Exists(kbt_logic::Var::new(i), Box::new(body))
            } else {
                Formula::Forall(kbt_logic::Var::new(i), Box::new(body))
            };
        }
        let phi = Sentence::new(body).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| t.insert(&phi, &kb).unwrap());
        });
    }
    group.finish();
}

/// Growing quantifier-free sentences (Theorem 4.9's hardness source).
fn ground_sentence_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("expression/ground_sentence_size");
    let t = Transformer::new();
    let mut rng = StdRng::seed_from_u64(5);
    for connectives in [4usize, 8, 12, 16] {
        let prop = Prop::random(connectives as u32 / 2 + 2, connectives, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(connectives),
            &connectives,
            |b, _| {
                b.iter(|| satisfiable_via_transformation(&t, &prop).unwrap());
            },
        );
    }
    group.finish();
}

/// Growing number of composed operators over a fixed knowledgebase.
fn operator_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("expression/operator_count");
    let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
    let kb = Knowledgebase::singleton(db);
    let t = Transformer::new();
    for steps in [1usize, 3, 6, 9] {
        let mut expr = Transform::Identity;
        for i in 0..steps {
            let phi = Sentence::new(atom(1, [cst(2 + i as u32)])).unwrap();
            expr = expr.then(Transform::insert(phi));
        }
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, _| {
            b.iter(|| t.apply(&expr, &kb).unwrap());
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = quantifier_depth, ground_sentence_size, operator_count
}
criterion_main!(benches);
