//! Experiment E6 — Theorem 4.5: the Turing-machine simulation.
//!
//! Two measurements: (a) the size of the transformation expression encoding a
//! machine on inputs of length `n` grows as `O(n²)`, and (b) the cost of
//! building the encoding.  The nondeterministic-machine simulator substrate
//! is benchmarked as well, since it provides the experiment's ground truth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kbt_bench::quick_criterion;
use kbt_reductions::turing::{encode, Machine, Move};

fn scanner() -> Machine {
    Machine {
        num_states: 2,
        num_symbols: 2,
        transitions: vec![(0, 0, 0, 0, Move::Right), (0, 1, 1, 1, Move::None)],
        accepting: 1,
    }
}

fn encoding_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm45/encoding_construction");
    let machine = scanner();
    println!("\nThm 4.5 encoding size (expression nodes) per input length n:");
    for n in [2usize, 4, 8, 16] {
        let input = vec![0u8; n];
        let enc = encode(&machine, &input, n);
        println!("  n = {n:>2}  →  |θ5| = {}", enc.size);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| encode(&machine, &input, n).size);
        });
    }
    group.finish();
}

fn simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm45/ntm_simulator");
    let machine = scanner();
    for n in [8usize, 16, 32] {
        let mut input = vec![0u8; n];
        input[n - 1] = 1;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| machine.accepts(&input, n + 2));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = encoding_construction, simulator
}
criterion_main!(benches);
