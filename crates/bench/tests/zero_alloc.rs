//! Allocation-budget assertions for the engine's probe inner loop.
//!
//! The flat-arena redesign of `IndexedRelation` promises that a join probe
//! against a ≤ [`PACK_MAX`]-column key performs **zero heap allocations**:
//! the key packs into a `u64` on the stack, the bucket lookup returns a
//! borrowed id slice, and row verification reads `&[Const]` slices straight
//! out of the arena.  This binary installs the counting allocator from
//! `kbt_bench::alloc_counter` as its global allocator and holds the loop to
//! that budget — if a future change boxes keys, clones tuples per
//! candidate, or materialises probe results, the count goes non-zero and
//! this test names the exact loop that regressed.
//!
//! The binary contains exactly one `#[test]` on purpose: the counters are
//! process-global, so a concurrently running sibling test would bill its
//! allocations to the measured window.

use kbt_bench::alloc_counter;
use kbt_data::Const;
use kbt_engine::{IndexedRelation, KeyAcc};

#[global_allocator]
static ALLOC: alloc_counter::CountingAlloc = alloc_counter::CountingAlloc;

fn c(i: u32) -> Const {
    Const::new(i)
}

#[test]
fn probe_inner_loop_allocates_nothing() {
    // A 2-ary relation shaped like a join input: 50 groups of 20 rows.
    let mut rel = IndexedRelation::new(2);
    for i in 0..1_000u32 {
        rel.insert_row(&[c(i % 50), c(i)]);
    }
    // Demand the two packed-key binding patterns a transitive-closure body
    // uses: first column bound (the probe side) and both columns bound
    // (the membership/negation side).
    rel.ensure_index(0b01);

    // Warm-up pass: any lazily grown state must not be billed to the
    // measured loop.
    let mut warm = 0u64;
    for g in 0..50u32 {
        let mut acc = KeyAcc::new(1);
        acc.push(c(g));
        warm += rel.probe_bucket(0b01, acc.finish()).len() as u64;
    }
    assert_eq!(warm, 1_000, "every row is reachable through its group");

    // The measured loop mirrors `eval::run_steps`' probe step: pack the
    // bound column into a key, look up the bucket, and verify candidates
    // against arena row slices.
    alloc_counter::reset();
    let mut hits = 0u64;
    for i in 0..10_000u32 {
        let group = c(i % 50);
        let mut acc = KeyAcc::new(1);
        acc.push(group);
        for &id in rel.probe_bucket(0b01, acc.finish()) {
            if rel.is_live(id) {
                let row = rel.row(id);
                debug_assert_eq!(row[0], group);
                if row[1].index().is_multiple_of(2) {
                    hits += 1;
                }
            }
        }
        // the fully bound pattern goes through the packed member bucket
        let mut acc = KeyAcc::new(2);
        acc.push(group);
        acc.push(c(i % 1_000));
        if !rel.member_bucket(acc.finish()).is_empty() {
            hits += 1;
        }
    }
    let (allocs, bytes) = alloc_counter::snapshot();
    assert!(hits > 0, "the probes must really run");
    assert_eq!(
        (allocs, bytes),
        (0, 0),
        "probe inner loop must not touch the heap"
    );
}
