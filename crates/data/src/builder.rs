//! Fluent builders for databases and knowledgebases.
//!
//! The builders make the examples in `examples/` and the test suites read
//! close to the paper's notation:
//!
//! ```
//! use kbt_data::{DatabaseBuilder, RelId};
//!
//! let db = DatabaseBuilder::new()
//!     .fact(RelId::new(1), [1, 2])
//!     .fact(RelId::new(1), [2, 3])
//!     .relation(RelId::new(2), 1)
//!     .build()
//!     .unwrap();
//! assert_eq!(db.fact_count(), 2);
//! ```

use std::collections::BTreeMap;

use crate::database::Database;
use crate::error::DataError;
use crate::knowledgebase::Knowledgebase;
use crate::relation::Relation;
use crate::schema::RelId;
use crate::tuple::Tuple;
use crate::value::Const;
use crate::Result;

/// Builder for a single [`Database`].
#[derive(Clone, Debug, Default)]
pub struct DatabaseBuilder {
    facts: Vec<(RelId, Tuple)>,
    empty_relations: Vec<(RelId, usize)>,
}

impl DatabaseBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        DatabaseBuilder::default()
    }

    /// Adds a fact `rel(t)`.
    pub fn fact(mut self, rel: RelId, t: impl Into<Tuple>) -> Self {
        self.facts.push((rel, t.into()));
        self
    }

    /// Adds several facts for the same relation.
    pub fn facts<T: Into<Tuple>>(mut self, rel: RelId, ts: impl IntoIterator<Item = T>) -> Self {
        for t in ts {
            self.facts.push((rel, t.into()));
        }
        self
    }

    /// Declares a relation (possibly empty) with the given arity.
    pub fn relation(mut self, rel: RelId, arity: usize) -> Self {
        self.empty_relations.push((rel, arity));
        self
    }

    /// Builds the database, checking arity consistency.
    ///
    /// Facts are grouped per relation and loaded through the bulk
    /// [`Relation::from_rows`] constructor (one sort per relation) rather
    /// than tuple-at-a-time insertion.
    pub fn build(self) -> Result<Database> {
        let mut db = Database::new();
        for (rel, arity) in self.empty_relations {
            db.ensure_relation(rel, arity)?;
        }
        // Group rows per relation, checking arity consistency as we go
        // (including against declared empty relations).
        let mut grouped: BTreeMap<RelId, (usize, Vec<Const>, usize)> = BTreeMap::new();
        for (rel, t) in self.facts {
            let arity = match grouped.get(&rel) {
                Some(&(a, ..)) => a,
                None => match db.relation(rel) {
                    Some(existing) => existing.arity(),
                    None => t.arity(),
                },
            };
            if t.arity() != arity {
                return Err(DataError::ArityMismatch {
                    rel,
                    expected: arity,
                    found: t.arity(),
                });
            }
            let entry = grouped.entry(rel).or_insert_with(|| (arity, Vec::new(), 0));
            entry.1.extend_from_slice(t.components());
            entry.2 += 1;
        }
        for (rel, (arity, rows, count)) in grouped {
            db.set_relation(rel, Relation::from_rows(arity, rows, count)?);
        }
        Ok(db)
    }
}

/// Builder for a [`Knowledgebase`].
#[derive(Clone, Debug, Default)]
pub struct KnowledgebaseBuilder {
    databases: Vec<Database>,
}

impl KnowledgebaseBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        KnowledgebaseBuilder::default()
    }

    /// Adds a possible world.
    pub fn world(mut self, db: Database) -> Self {
        self.databases.push(db);
        self
    }

    /// Builds the knowledgebase, checking schema uniformity.
    pub fn build(self) -> Result<Knowledgebase> {
        Knowledgebase::from_databases(self.databases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn database_builder_collects_facts_and_empty_relations() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .facts(r(1), [[2u32, 3], [3, 4]])
            .relation(r(2), 1)
            .build()
            .unwrap();
        assert_eq!(db.fact_count(), 3);
        assert!(db.relation(r(2)).unwrap().is_empty());
    }

    #[test]
    fn database_builder_detects_arity_conflicts() {
        let res = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [1u32])
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn knowledgebase_builder_enforces_uniform_schema() {
        let d1 = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let d2 = DatabaseBuilder::new()
            .fact(r(1), [3u32, 4])
            .build()
            .unwrap();
        let kb = KnowledgebaseBuilder::new()
            .world(d1.clone())
            .world(d2)
            .build()
            .unwrap();
        assert_eq!(kb.len(), 2);

        let bad = DatabaseBuilder::new().fact(r(2), [1u32]).build().unwrap();
        assert!(KnowledgebaseBuilder::new()
            .world(d1)
            .world(bad)
            .build()
            .is_err());
    }
}
