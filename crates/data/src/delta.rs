//! Componentwise symmetric differences between databases.
//!
//! The Winslett order of Definition 2.1 compares candidate databases by the
//! componentwise symmetric difference of their relations with the relations of
//! the original database.  A [`DatabaseDelta`] materialises that comparison
//! object: for every relation symbol of a *base* schema, the set of facts on
//! which a candidate disagrees with the base database.

use std::collections::BTreeMap;
use std::fmt;

use crate::database::Database;
use crate::relation::Relation;
use crate::schema::RelId;
use crate::Result;

/// The componentwise symmetric difference `candidate Δ base`, restricted to
/// the relations of the base database's schema.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DatabaseDelta {
    per_relation: BTreeMap<RelId, Relation>,
}

impl DatabaseDelta {
    /// Computes `candidate Δ base` componentwise over `σ(base)`.
    ///
    /// The candidate must dominate the base schema (every relation of the base
    /// appears in the candidate with the same arity); relations of the
    /// candidate that do not appear in the base are ignored here — they are
    /// handled by the second stage of the Winslett order.
    pub fn between(candidate: &Database, base: &Database) -> Result<DatabaseDelta> {
        let mut per_relation = BTreeMap::new();
        for (rel, base_rel) in base.iter() {
            let cand_rel = match candidate.relation(rel) {
                Some(r) => r.clone(),
                None => Relation::empty(base_rel.arity()),
            };
            per_relation.insert(rel, cand_rel.symmetric_difference(base_rel)?);
        }
        Ok(DatabaseDelta { per_relation })
    }

    /// Whether the candidate leaves every base relation unchanged.
    pub fn is_empty(&self) -> bool {
        self.per_relation.values().all(Relation::is_empty)
    }

    /// Total number of changed facts.
    pub fn changed_fact_count(&self) -> usize {
        self.per_relation.values().map(Relation::len).sum()
    }

    /// The changed facts of one relation, if it is part of the base schema.
    pub fn relation(&self, rel: RelId) -> Option<&Relation> {
        self.per_relation.get(&rel)
    }

    /// Componentwise inclusion `self ⊆ other` (stage one of the Winslett
    /// order).  Both deltas must be w.r.t. the same base database.
    pub fn is_componentwise_subset(&self, other: &DatabaseDelta) -> bool {
        self.per_relation.iter().all(|(rel, mine)| {
            other
                .per_relation
                .get(rel)
                .is_some_and(|theirs| mine.is_subset(theirs))
        })
    }

    /// Iterates over `(relation, changed facts)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> + '_ {
        self.per_relation.iter().map(|(&r, rel)| (r, rel))
    }
}

impl fmt::Debug for DatabaseDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ⟨")?;
        for (i, (r, rel)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}={rel}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn db(facts: &[(u32, crate::Tuple)]) -> Database {
        let mut d = Database::new();
        for (rel, t) in facts {
            d.insert_fact(RelId::new(*rel), t.clone()).unwrap();
        }
        d
    }

    #[test]
    fn delta_with_base_itself_is_empty() {
        let base = db(&[(1, tuple![1, 2]), (1, tuple![2, 3])]);
        let d = DatabaseDelta::between(&base, &base).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.changed_fact_count(), 0);
    }

    #[test]
    fn delta_counts_insertions_and_deletions() {
        let base = db(&[(1, tuple![1, 2]), (1, tuple![2, 3])]);
        // candidate deletes (2,3) and inserts (1,3)
        let cand = db(&[(1, tuple![1, 2]), (1, tuple![1, 3])]);
        let d = DatabaseDelta::between(&cand, &base).unwrap();
        assert_eq!(d.changed_fact_count(), 2);
        assert!(d.relation(r(1)).unwrap().contains(&tuple![2, 3]));
        assert!(d.relation(r(1)).unwrap().contains(&tuple![1, 3]));
    }

    #[test]
    fn candidate_may_have_extra_relations_they_are_ignored() {
        let base = db(&[(1, tuple![1, 2])]);
        let mut cand = base.clone();
        cand.insert_fact(r(2), tuple![7]).unwrap();
        let d = DatabaseDelta::between(&cand, &base).unwrap();
        assert!(d.is_empty());
        assert!(d.relation(r(2)).is_none());
    }

    #[test]
    fn missing_base_relation_in_candidate_counts_as_all_deleted() {
        let base = db(&[(1, tuple![1, 2]), (1, tuple![2, 3])]);
        let cand = Database::new();
        let d = DatabaseDelta::between(&cand, &base).unwrap();
        assert_eq!(d.changed_fact_count(), 2);
    }

    #[test]
    fn componentwise_subset_mirrors_definition() {
        let base = db(&[(1, tuple![1, 2])]);
        let unchanged = base.clone();
        let changed = db(&[(1, tuple![1, 2]), (1, tuple![9, 9])]);
        let d_small = DatabaseDelta::between(&unchanged, &base).unwrap();
        let d_big = DatabaseDelta::between(&changed, &base).unwrap();
        assert!(d_small.is_componentwise_subset(&d_big));
        assert!(!d_big.is_componentwise_subset(&d_small));
        assert!(d_small.is_componentwise_subset(&d_small));
    }
}
