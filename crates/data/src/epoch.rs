//! Epoch/snapshot handles: atomically publishable versions of a value.
//!
//! The serving layer (`kbt-service`) wants MVCC reads: many readers each
//! grab an immutable *snapshot* of the committed state in `O(1)` and keep
//! evaluating against it while a writer prepares — and then atomically
//! publishes — the next version.  Because every container in this crate is
//! copy-on-write underneath ([`crate::Relation`] is `Arc`-backed), a
//! snapshot is genuinely cheap: one `Arc` clone of the published cell, no
//! data copied.
//!
//! [`EpochCell`] is that cell.  It is deliberately tiny — a `RwLock` around
//! an `Arc<Versioned<T>>` — because the contract, not the machinery, is the
//! point:
//!
//! * **Snapshots are immutable.**  [`EpochCell::load`] hands out the
//!   `Arc`; whatever the writer does later can never be observed through
//!   it.
//! * **Publication is atomic.**  [`EpochCell::publish`] swaps the whole
//!   `Arc` under the write lock; a concurrent `load` sees either the old
//!   version or the new one, never a torn mix.
//! * **Epochs are totally ordered.**  Every publish bumps the
//!   [`EpochId`]; a reader can tell exactly which committed version it is
//!   looking at, and two snapshots with the same epoch are the same value.
//!
//! The lock is held only for the duration of an `Arc` clone/swap — reads
//! never block on a writer *preparing* a commit (that happens outside the
//! cell), only on the nanoseconds of the swap itself.

use std::fmt;
use std::sync::{Arc, PoisonError, RwLock};

/// A monotonically increasing version number for published values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpochId(u64);

impl EpochId {
    /// The first epoch (the initially published value carries it).
    pub const ZERO: EpochId = EpochId(0);

    /// An epoch with the given raw number.
    pub fn new(n: u64) -> Self {
        EpochId(n)
    }

    /// The raw number.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The next epoch.
    pub fn next(self) -> Self {
        EpochId(self.0 + 1)
    }
}

impl fmt::Display for EpochId {
    /// Renders as `e<number>`, e.g. `e42`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One published version: an epoch number plus the value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Versioned<T> {
    epoch: EpochId,
    value: T,
}

impl<T> Versioned<T> {
    /// The epoch this version was published at.
    pub fn epoch(&self) -> EpochId {
        self.epoch
    }

    /// The published value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

/// An atomically swappable, epoch-numbered value cell (see module docs).
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: RwLock<Arc<Versioned<T>>>,
}

impl<T> EpochCell<T> {
    /// A cell whose initial value is published at [`EpochId::ZERO`].
    pub fn new(value: T) -> Self {
        EpochCell {
            slot: RwLock::new(Arc::new(Versioned {
                epoch: EpochId::ZERO,
                value,
            })),
        }
    }

    /// A cell whose initial value is published at an arbitrary `epoch` —
    /// the recovery path re-seeds a cell at the epoch a checkpoint + log
    /// replay reconstructed, so epoch numbers survive a restart.
    pub fn at(epoch: EpochId, value: T) -> Self {
        EpochCell {
            slot: RwLock::new(Arc::new(Versioned { epoch, value })),
        }
    }

    /// An `O(1)` snapshot of the currently published version.
    pub fn load(&self) -> Arc<Versioned<T>> {
        self.slot
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The currently published epoch.
    pub fn epoch(&self) -> EpochId {
        self.load().epoch
    }

    /// Atomically publishes `value` as the next epoch and returns that
    /// epoch.  Outstanding snapshots are unaffected.
    pub fn publish(&self, value: T) -> EpochId {
        let mut slot = self.slot.write().unwrap_or_else(PoisonError::into_inner);
        let epoch = slot.epoch.next();
        *slot = Arc::new(Versioned { epoch, value });
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_are_ordered_and_display_readably() {
        assert!(EpochId::ZERO < EpochId::new(1));
        assert_eq!(EpochId::new(41).next(), EpochId::new(42));
        assert_eq!(EpochId::new(42).to_string(), "e42");
        assert_eq!(EpochId::new(7).get(), 7);
    }

    #[test]
    fn publish_bumps_the_epoch_and_snapshots_stay_frozen() {
        let cell = EpochCell::new(vec![1, 2]);
        let before = cell.load();
        assert_eq!(before.epoch(), EpochId::ZERO);
        assert_eq!(before.value(), &vec![1, 2]);

        let e1 = cell.publish(vec![1, 2, 3]);
        assert_eq!(e1, EpochId::new(1));
        assert_eq!(cell.epoch(), e1);
        // the old snapshot is untouched
        assert_eq!(before.value(), &vec![1, 2]);
        assert_eq!(cell.load().value(), &vec![1, 2, 3]);
    }

    #[test]
    fn cells_can_start_at_a_recovered_epoch() {
        let cell = EpochCell::at(EpochId::new(41), "recovered");
        assert_eq!(cell.epoch(), EpochId::new(41));
        assert_eq!(cell.load().value(), &"recovered");
        assert_eq!(cell.publish("next"), EpochId::new(42));
    }

    #[test]
    fn concurrent_readers_see_whole_versions_only() {
        // A writer publishes vectors whose entries all equal the epoch
        // number; a torn read would surface as a mixed vector.
        let cell = std::sync::Arc::new(EpochCell::new(vec![0u64; 32]));
        let writer = {
            let cell = cell.clone();
            std::thread::spawn(move || {
                for e in 1..=200u64 {
                    cell.publish(vec![e; 32]);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..400 {
                        let snap = cell.load();
                        let v = snap.value();
                        assert!(v.iter().all(|&x| x == v[0]), "torn read: {v:?}");
                        assert_eq!(v[0], snap.epoch().get());
                        assert!(snap.epoch().get() >= last, "epochs went backwards");
                        last = snap.epoch().get();
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
