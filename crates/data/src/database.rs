//! Databases: finite relational structures under the closed world assumption.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::DataError;
use crate::relation::Relation;
use crate::schema::{RelId, Schema};
use crate::tuple::Tuple;
use crate::value::Const;
use crate::Result;

/// A database `db = (r_{i1}, …, r_{in})`: a finite relation for each relation
/// symbol of its schema.
///
/// Only the facts explicitly stored are true (closed world assumption,
/// Section 2 of the paper).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Database {
    relations: BTreeMap<RelId, Relation>,
}

impl Database {
    /// The empty database over the empty schema.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a database with every relation of `schema` empty.
    pub fn empty_over(schema: &Schema) -> Self {
        Database {
            relations: schema
                .iter()
                .map(|(r, a)| (r, Relation::empty(a)))
                .collect(),
        }
    }

    /// The schema `σ(db)` of the database.
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for (&r, rel) in &self.relations {
            // arities inside one database are consistent by construction
            s.add(r, rel.arity()).expect("consistent arities");
        }
        s
    }

    /// Adds (or replaces) a whole relation.
    pub fn set_relation(&mut self, rel: RelId, relation: Relation) {
        self.relations.insert(rel, relation);
    }

    /// Ensures `rel` exists with the given arity (empty if absent).
    ///
    /// Fails if `rel` is already present with a different arity.
    pub fn ensure_relation(&mut self, rel: RelId, arity: usize) -> Result<()> {
        match self.relations.get(&rel) {
            Some(existing) if existing.arity() != arity => Err(DataError::ArityMismatch {
                rel,
                expected: existing.arity(),
                found: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.relations.insert(rel, Relation::empty(arity));
                Ok(())
            }
        }
    }

    /// The relation stored under `rel`, if any.
    pub fn relation(&self, rel: RelId) -> Option<&Relation> {
        self.relations.get(&rel)
    }

    /// Mutable access to the relation stored under `rel`, if any.
    pub fn relation_mut(&mut self, rel: RelId) -> Option<&mut Relation> {
        self.relations.get_mut(&rel)
    }

    /// Whether the fact `rel(t)` holds (closed world: absent ⇒ false).
    pub fn holds(&self, rel: RelId, t: &Tuple) -> bool {
        self.relations.get(&rel).is_some_and(|r| r.contains(t))
    }

    /// Inserts the fact `rel(t)`, creating the relation if needed.
    pub fn insert_fact(&mut self, rel: RelId, t: Tuple) -> Result<bool> {
        self.ensure_relation(rel, t.arity())?;
        self.relations
            .get_mut(&rel)
            .expect("just ensured")
            .insert(t)
    }

    /// Removes the fact `rel(t)`; returns whether it was present.
    pub fn remove_fact(&mut self, rel: RelId, t: &Tuple) -> bool {
        self.relations.get_mut(&rel).is_some_and(|r| r.remove(t))
    }

    /// Number of facts across all relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Iterates over `(relation symbol, relation)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> + '_ {
        self.relations.iter().map(|(&r, rel)| (r, rel))
    }

    /// Iterates over every fact `(relation symbol, tuple)`.
    ///
    /// Tuples are materialized from the flat row storage on the fly; hot
    /// paths should iterate [`Relation::iter`] row slices via [`Self::iter`]
    /// instead.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, Tuple)> + '_ {
        self.relations
            .iter()
            .flat_map(|(&r, rel)| rel.tuples().map(move |t| (r, t)))
    }

    /// The active domain: every constant appearing in some fact.
    pub fn constants(&self) -> BTreeSet<Const> {
        self.relations
            .values()
            .flat_map(|r| r.constants())
            .collect()
    }

    /// Projects the database onto the listed relation symbols (the paper's
    /// `π_{i1,…,ik}` applied to a single database).  Symbols not present are
    /// silently ignored.
    pub fn project(&self, rels: &[RelId]) -> Database {
        Database {
            relations: self
                .relations
                .iter()
                .filter(|(r, _)| rels.contains(r))
                .map(|(&r, rel)| (r, rel.clone()))
                .collect(),
        }
    }

    /// Extends the schema of the database with empty relations so that it
    /// covers `schema` (used when lifting `db` into the candidate space
    /// `DB_s` with `s ⊇ σ(db)`).
    pub fn extend_schema(&self, schema: &Schema) -> Result<Database> {
        let mut out = self.clone();
        for (r, a) in schema.iter() {
            out.ensure_relation(r, a)?;
        }
        Ok(out)
    }

    /// Componentwise intersection with another database over the same schema.
    pub fn componentwise_intersection(&self, other: &Database) -> Result<Database> {
        self.componentwise(other, Relation::intersection)
    }

    /// Componentwise union with another database over the same schema.
    pub fn componentwise_union(&self, other: &Database) -> Result<Database> {
        self.componentwise(other, Relation::union)
    }

    fn componentwise(
        &self,
        other: &Database,
        op: impl Fn(&Relation, &Relation) -> Result<Relation>,
    ) -> Result<Database> {
        if self.schema() != other.schema() {
            return Err(DataError::SchemaMismatch {
                left: self.schema(),
                right: other.schema(),
            });
        }
        let mut out = Database::new();
        for (r, rel) in self.iter() {
            let other_rel = other.relation(r).expect("same schema");
            out.set_relation(r, op(rel, other_rel)?);
        }
        Ok(out)
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (r, rel)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}={rel}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn facts_and_closed_world() {
        let mut db = Database::new();
        db.insert_fact(r(1), tuple![1, 2]).unwrap();
        db.insert_fact(r(1), tuple![1, 4]).unwrap();
        assert!(db.holds(r(1), &tuple![1, 2]));
        assert!(!db.holds(r(1), &tuple![2, 1]));
        assert!(!db.holds(r(9), &tuple![1, 2]));
        assert_eq!(db.fact_count(), 2);
    }

    #[test]
    fn schema_reflects_relations() {
        let mut db = Database::new();
        db.insert_fact(r(1), tuple![1, 2]).unwrap();
        db.ensure_relation(r(2), 1).unwrap();
        let s = db.schema();
        assert_eq!(s.arity(r(1)), Some(2));
        assert_eq!(s.arity(r(2)), Some(1));
    }

    #[test]
    fn arity_conflicts_rejected() {
        let mut db = Database::new();
        db.insert_fact(r(1), tuple![1, 2]).unwrap();
        assert!(db.insert_fact(r(1), tuple![1]).is_err());
        assert!(db.ensure_relation(r(1), 3).is_err());
    }

    #[test]
    fn projection_keeps_selected_relations() {
        let mut db = Database::new();
        db.insert_fact(r(1), tuple![1, 2]).unwrap();
        db.insert_fact(r(2), tuple![3]).unwrap();
        let p = db.project(&[r(2)]);
        assert!(p.relation(r(1)).is_none());
        assert!(p.holds(r(2), &tuple![3]));
    }

    #[test]
    fn extend_schema_adds_empty_relations() {
        let mut db = Database::new();
        db.insert_fact(r(1), tuple![1, 2]).unwrap();
        let s = Schema::from_pairs([(r(1), 2), (r(2), 1)]).unwrap();
        let ext = db.extend_schema(&s).unwrap();
        assert!(ext.relation(r(2)).unwrap().is_empty());
        assert!(ext.holds(r(1), &tuple![1, 2]));
    }

    #[test]
    fn componentwise_glb_lub_from_paper_example() {
        // kb = {({a1a2, a1a4}), ({a1a4, a2a3})} over a single binary relation.
        // ⊓(kb) = {a1a4}, ⊔(kb) = {a1a2, a2a3, a1a4}   (Section 2).
        let mut d1 = Database::new();
        d1.insert_fact(r(1), tuple![1, 2]).unwrap();
        d1.insert_fact(r(1), tuple![1, 4]).unwrap();
        let mut d2 = Database::new();
        d2.insert_fact(r(1), tuple![1, 4]).unwrap();
        d2.insert_fact(r(1), tuple![2, 3]).unwrap();

        let glb = d1.componentwise_intersection(&d2).unwrap();
        assert_eq!(glb.fact_count(), 1);
        assert!(glb.holds(r(1), &tuple![1, 4]));

        let lub = d1.componentwise_union(&d2).unwrap();
        assert_eq!(lub.fact_count(), 3);
    }

    #[test]
    fn componentwise_requires_identical_schema() {
        let mut d1 = Database::new();
        d1.insert_fact(r(1), tuple![1, 2]).unwrap();
        let mut d2 = Database::new();
        d2.insert_fact(r(2), tuple![1, 2]).unwrap();
        assert!(d1.componentwise_union(&d2).is_err());
    }

    #[test]
    fn active_domain() {
        let mut db = Database::new();
        db.insert_fact(r(1), tuple![1, 2]).unwrap();
        db.insert_fact(r(2), tuple![5]).unwrap();
        let dom: Vec<_> = db.constants().into_iter().collect();
        assert_eq!(dom, vec![Const::new(1), Const::new(2), Const::new(5)]);
    }
}
