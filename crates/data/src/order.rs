//! The Winslett possible-models order `≤_db` (Definition 2.1).
//!
//! Given a base database `db`, two candidate databases `db1`, `db2` over a
//! common schema that dominates `σ(db)` are compared in two stages:
//!
//! 1. componentwise inclusion of the symmetric differences with `db` on the
//!    relations of `σ(db)` (smaller changes to the stored relations win), and
//! 2. only when those differences are **equal**, componentwise inclusion of
//!    the relations that are new (in the candidates' schema but not in
//!    `σ(db)`); since the new relations are compared against the empty set,
//!    smaller new relations win.
//!
//! This is exactly the two-stage comparison spelled out below Definition 2.1
//! in the paper and it makes `≤_db` a partial order, as the paper asserts.

use crate::database::Database;
use crate::delta::DatabaseDelta;
use crate::Result;

/// Whether `db1 ≤_db db2` under the Winslett order with base `base`.
///
/// Both candidates must be over the same schema, and that schema must
/// dominate `σ(base)`; violations yield an error rather than a silent
/// `false`.
pub fn winslett_leq(db1: &Database, db2: &Database, base: &Database) -> Result<bool> {
    let s1 = db1.schema();
    let s2 = db2.schema();
    if s1 != s2 {
        return Err(crate::DataError::SchemaMismatch {
            left: s1,
            right: s2,
        });
    }
    let base_schema = base.schema();
    if !base_schema.is_subschema_of(&s1) {
        return Err(crate::DataError::SchemaNotDominated {
            base: base_schema,
            candidate: s1,
        });
    }

    let d1 = DatabaseDelta::between(db1, base)?;
    let d2 = DatabaseDelta::between(db2, base)?;

    // Stage 1: componentwise inclusion of the symmetric differences.
    if !d1.is_componentwise_subset(&d2) {
        return Ok(false);
    }
    // If the differences are not equal, stage 1 alone decides.
    if d1 != d2 {
        return Ok(true);
    }
    // Stage 2: ties are broken by the relations outside σ(base), compared by
    // inclusion (equivalently: by symmetric difference with the empty set).
    for (rel, rel1) in db1.iter() {
        if base.relation(rel).is_some() {
            continue;
        }
        let rel2 = db2.relation(rel).expect("same schema");
        if !rel1.is_subset(rel2) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Whether `db1 <_db db2`, i.e. `db1 ≤_db db2` and `db1 ≠ db2`.
pub fn winslett_lt(db1: &Database, db2: &Database, base: &Database) -> Result<bool> {
    Ok(db1 != db2 && winslett_leq(db1, db2, base)?)
}

/// Whether `candidate` is `≤_base`-minimal within `others` (Definition of
/// db-minimality in Section 2): no element of `others` is strictly below it.
pub fn is_minimal<'a>(
    candidate: &Database,
    others: impl IntoIterator<Item = &'a Database>,
    base: &Database,
) -> Result<bool> {
    for other in others {
        if winslett_lt(other, candidate, base)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The `≤_base`-minimal elements of a set of candidate databases.
///
/// This is the reference implementation of the minimisation step inside the
/// paper's `µ` function (definition (9)); the optimised evaluators in
/// `kbt-core` must agree with it.
pub fn minimal_elements(candidates: &[Database], base: &Database) -> Result<Vec<Database>> {
    let mut out = Vec::new();
    for (i, cand) in candidates.iter().enumerate() {
        let mut minimal = true;
        for (j, other) in candidates.iter().enumerate() {
            if i != j && winslett_lt(other, cand, base)? {
                minimal = false;
                break;
            }
        }
        if minimal && !out.contains(cand) {
            out.push(cand.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;
    use crate::tuple;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    /// The worked example right after Definition 2.1:
    /// db1 = ({R(a1,a2), S(a1,a4)}), db2 = ({R(a1,a2), S(a1,a4), S(a2,a3)}),
    /// db = ({R(a1,a2)}); then db1 ≤_db db2.
    #[test]
    fn paper_example_after_definition_21() {
        let mut base = Database::new();
        base.insert_fact(r(1), tuple![1, 2]).unwrap();

        let mut db1 = Database::new();
        db1.insert_fact(r(1), tuple![1, 2]).unwrap();
        db1.insert_fact(r(2), tuple![1, 4]).unwrap();

        let mut db2 = Database::new();
        db2.insert_fact(r(1), tuple![1, 2]).unwrap();
        db2.insert_fact(r(2), tuple![1, 4]).unwrap();
        db2.insert_fact(r(2), tuple![2, 3]).unwrap();

        assert!(winslett_leq(&db1, &db2, &base).unwrap());
        assert!(!winslett_leq(&db2, &db1, &base).unwrap());
        assert!(winslett_lt(&db1, &db2, &base).unwrap());
    }

    #[test]
    fn stage_one_changes_to_stored_relations_dominate() {
        // base has R = {(1,2)}.  A candidate that keeps R unchanged but has a
        // huge new relation is still strictly closer than a candidate that
        // touches R, however small its new relation is.
        let mut base = Database::new();
        base.insert_fact(r(1), tuple![1, 2]).unwrap();

        let mut keeps_r = Database::new();
        keeps_r.insert_fact(r(1), tuple![1, 2]).unwrap();
        keeps_r.insert_fact(r(2), tuple![1, 1]).unwrap();
        keeps_r.insert_fact(r(2), tuple![2, 2]).unwrap();

        let mut touches_r = Database::new();
        touches_r.insert_fact(r(1), tuple![1, 2]).unwrap();
        touches_r.insert_fact(r(1), tuple![9, 9]).unwrap();
        touches_r.ensure_relation(r(2), 2).unwrap();

        assert!(winslett_lt(&keeps_r, &touches_r, &base).unwrap());
        assert!(!winslett_leq(&touches_r, &keeps_r, &base).unwrap());
    }

    #[test]
    fn stage_two_only_applies_on_equal_deltas() {
        // Both candidates change R in incomparable ways; neither is below the
        // other even though one has an empty new relation.
        let mut base = Database::new();
        base.insert_fact(r(1), tuple![1, 2]).unwrap();

        let mut c1 = Database::new();
        c1.insert_fact(r(1), tuple![1, 2]).unwrap();
        c1.insert_fact(r(1), tuple![3, 3]).unwrap();
        c1.ensure_relation(r(2), 1).unwrap();

        let mut c2 = Database::new();
        c2.insert_fact(r(1), tuple![1, 2]).unwrap();
        c2.insert_fact(r(1), tuple![4, 4]).unwrap();
        c2.insert_fact(r(2), tuple![5]).unwrap();

        assert!(!winslett_leq(&c1, &c2, &base).unwrap());
        assert!(!winslett_leq(&c2, &c1, &base).unwrap());
    }

    #[test]
    fn order_is_reflexive_and_antisymmetric() {
        let mut base = Database::new();
        base.insert_fact(r(1), tuple![1, 2]).unwrap();
        let mut c1 = base.clone();
        c1.insert_fact(r(2), tuple![1]).unwrap();
        let mut c2 = base.clone();
        c2.insert_fact(r(2), tuple![2]).unwrap();

        assert!(winslett_leq(&c1, &c1, &base).unwrap());
        // c1 and c2 are incomparable in stage two.
        assert!(!winslett_leq(&c1, &c2, &base).unwrap());
        assert!(!winslett_leq(&c2, &c1, &base).unwrap());
    }

    #[test]
    fn minimal_elements_of_a_chain() {
        let mut base = Database::new();
        base.insert_fact(r(1), tuple![1, 2]).unwrap();

        // candidates over schema {R1, R2}: R1 unchanged, R2 grows.
        let mk = |extra: &[crate::Tuple]| {
            let mut d = base.clone();
            d.ensure_relation(r(2), 1).unwrap();
            for t in extra {
                d.insert_fact(r(2), t.clone()).unwrap();
            }
            d
        };
        let c0 = mk(&[]);
        let c1 = mk(&[tuple![1]]);
        let c2 = mk(&[tuple![1], tuple![2]]);
        let minimal = minimal_elements(&[c2.clone(), c1.clone(), c0.clone()], &base).unwrap();
        assert_eq!(minimal, vec![c0]);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let mut base = Database::new();
        base.insert_fact(r(1), tuple![1, 2]).unwrap();
        let mut a = Database::new();
        a.insert_fact(r(1), tuple![1, 2]).unwrap();
        let mut b = Database::new();
        b.insert_fact(r(2), tuple![1, 2]).unwrap();
        assert!(winslett_leq(&a, &b, &base).is_err());
        // candidate schema must dominate the base
        assert!(winslett_leq(&b, &b, &base).is_err());
    }
}
