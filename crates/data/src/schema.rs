//! Relation symbols and schemas.
//!
//! The paper associates an arity `α(i)` with every relation symbol `R_i` and
//! defines the schema of a database (or sentence) as the set of relation
//! symbols occurring in it.  A [`Schema`] here is a finite map from [`RelId`]
//! to arity; *domination* (`σ(db1) ⊆ σ(db2)`) is subset inclusion of the maps.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::DataError;
use crate::Result;

/// A relation symbol `R_i`.
///
/// Like [`crate::Const`], relation symbols are plain indices; names live in a
/// [`crate::Vocabulary`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl RelId {
    /// Creates the relation symbol `R_i`.
    pub const fn new(i: u32) -> Self {
        RelId(i)
    }

    /// The index of this relation symbol.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u32> for RelId {
    fn from(i: u32) -> Self {
        RelId(i)
    }
}

/// A schema: a finite set of relation symbols together with their arities.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Schema {
    arities: BTreeMap<RelId, usize>,
}

impl Schema {
    /// The empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Builds a schema from `(relation, arity)` pairs.
    ///
    /// Returns an error if the same relation symbol is given two different
    /// arities.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (RelId, usize)>) -> Result<Self> {
        let mut s = Schema::new();
        for (r, a) in pairs {
            s.add(r, a)?;
        }
        Ok(s)
    }

    /// Adds a relation symbol with the given arity.
    ///
    /// Adding an already-present symbol with the same arity is a no-op;
    /// adding it with a different arity is an error.
    pub fn add(&mut self, rel: RelId, arity: usize) -> Result<()> {
        match self.arities.get(&rel) {
            Some(&a) if a != arity => Err(DataError::ArityMismatch {
                rel,
                expected: a,
                found: arity,
            }),
            _ => {
                self.arities.insert(rel, arity);
                Ok(())
            }
        }
    }

    /// Arity of `rel`, if the symbol is part of the schema.
    pub fn arity(&self, rel: RelId) -> Option<usize> {
        self.arities.get(&rel).copied()
    }

    /// Whether `rel` is part of the schema.
    pub fn contains(&self, rel: RelId) -> bool {
        self.arities.contains_key(&rel)
    }

    /// Number of relation symbols.
    pub fn len(&self) -> usize {
        self.arities.len()
    }

    /// Whether the schema has no relation symbols.
    pub fn is_empty(&self) -> bool {
        self.arities.is_empty()
    }

    /// Iterates over `(relation, arity)` pairs in relation order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, usize)> + '_ {
        self.arities.iter().map(|(&r, &a)| (r, a))
    }

    /// Iterates over the relation symbols in order.
    pub fn relations(&self) -> impl Iterator<Item = RelId> + '_ {
        self.arities.keys().copied()
    }

    /// Whether `self` is a sub-schema of `other` (the paper's *is dominated
    /// by*): every symbol of `self` occurs in `other` with the same arity.
    pub fn is_subschema_of(&self, other: &Schema) -> bool {
        self.iter().all(|(r, a)| other.arity(r) == Some(a))
    }

    /// The union `σ(db) ∪ σ(φ)` of two schemas.
    ///
    /// Fails if the schemas disagree on the arity of a shared symbol.
    pub fn union(&self, other: &Schema) -> Result<Schema> {
        let mut s = self.clone();
        for (r, a) in other.iter() {
            s.add(r, a)?;
        }
        Ok(s)
    }

    /// The relation symbols of `self` that are *not* in `other`.
    pub fn difference(&self, other: &Schema) -> Schema {
        Schema {
            arities: self
                .arities
                .iter()
                .filter(|(r, _)| !other.contains(**r))
                .map(|(&r, &a)| (r, a))
                .collect(),
        }
    }

    /// Restricts the schema to the given relation symbols.
    pub fn restrict(&self, rels: &[RelId]) -> Schema {
        Schema {
            arities: self
                .arities
                .iter()
                .filter(|(r, _)| rels.contains(r))
                .map(|(&r, &a)| (r, a))
                .collect(),
        }
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (r, a)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}/{a}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut s = Schema::new();
        s.add(RelId(1), 2).unwrap();
        s.add(RelId(2), 1).unwrap();
        assert_eq!(s.arity(RelId(1)), Some(2));
        assert_eq!(s.arity(RelId(3)), None);
        assert!(s.contains(RelId(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn arity_conflict_is_rejected() {
        let mut s = Schema::new();
        s.add(RelId(1), 2).unwrap();
        assert!(s.add(RelId(1), 2).is_ok());
        assert!(matches!(
            s.add(RelId(1), 3),
            Err(DataError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn domination_is_subset_inclusion() {
        let small = Schema::from_pairs([(RelId(1), 2)]).unwrap();
        let big = Schema::from_pairs([(RelId(1), 2), (RelId(2), 1)]).unwrap();
        assert!(small.is_subschema_of(&big));
        assert!(!big.is_subschema_of(&small));
        assert!(small.is_subschema_of(&small));
    }

    #[test]
    fn union_and_difference() {
        let a = Schema::from_pairs([(RelId(1), 2)]).unwrap();
        let b = Schema::from_pairs([(RelId(2), 1), (RelId(1), 2)]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        let d = b.difference(&a);
        assert_eq!(d.len(), 1);
        assert!(d.contains(RelId(2)));
    }

    #[test]
    fn union_rejects_conflicting_arity() {
        let a = Schema::from_pairs([(RelId(1), 2)]).unwrap();
        let b = Schema::from_pairs([(RelId(1), 3)]).unwrap();
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn restrict_keeps_only_requested_relations() {
        let s = Schema::from_pairs([(RelId(1), 2), (RelId(2), 1), (RelId(3), 0)]).unwrap();
        let r = s.restrict(&[RelId(2), RelId(3)]);
        assert_eq!(r.len(), 2);
        assert!(!r.contains(RelId(1)));
    }
}
