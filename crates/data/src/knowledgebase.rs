//! Knowledgebases: finite sets of databases over one schema.

use std::collections::BTreeSet;
use std::fmt;

use crate::database::Database;
use crate::error::DataError;
use crate::schema::{RelId, Schema};
use crate::value::Const;
use crate::Result;

/// A knowledgebase `kb`: a finite set of databases with the same schema
/// (Section 2).  The set of databases is the set of "possible worlds"; a
/// fact is *certain* if it holds in every database and *possible* if it holds
/// in at least one.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Knowledgebase {
    databases: BTreeSet<Database>,
}

impl Knowledgebase {
    /// The empty (inconsistent) knowledgebase — no possible worlds.
    pub fn empty() -> Self {
        Knowledgebase::default()
    }

    /// The knowledgebase containing a single database.
    pub fn singleton(db: Database) -> Self {
        let mut databases = BTreeSet::new();
        databases.insert(db);
        Knowledgebase { databases }
    }

    /// Builds a knowledgebase from databases, checking that they all share
    /// one schema.
    pub fn from_databases(dbs: impl IntoIterator<Item = Database>) -> Result<Self> {
        let mut kb = Knowledgebase::empty();
        for db in dbs {
            kb.insert(db)?;
        }
        Ok(kb)
    }

    /// Inserts a database; fails if its schema differs from the knowledge-
    /// base's schema.  Returns whether the database was new.
    pub fn insert(&mut self, db: Database) -> Result<bool> {
        if let Some(existing) = self.databases.iter().next() {
            if existing.schema() != db.schema() {
                return Err(DataError::SchemaMismatch {
                    left: existing.schema(),
                    right: db.schema(),
                });
            }
        }
        Ok(self.databases.insert(db))
    }

    /// Number of possible worlds.
    pub fn len(&self) -> usize {
        self.databases.len()
    }

    /// Whether the knowledgebase has no possible worlds.
    pub fn is_empty(&self) -> bool {
        self.databases.is_empty()
    }

    /// Whether the knowledgebase consists of exactly one database.
    pub fn is_singleton(&self) -> bool {
        self.databases.len() == 1
    }

    /// The schema shared by all databases (empty schema if the kb is empty).
    pub fn schema(&self) -> Schema {
        self.databases
            .iter()
            .next()
            .map(Database::schema)
            .unwrap_or_default()
    }

    /// Whether the given database is one of the possible worlds.
    pub fn contains(&self, db: &Database) -> bool {
        self.databases.contains(db)
    }

    /// Iterates over the possible worlds in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Database> + '_ {
        self.databases.iter()
    }

    /// The only database, if the knowledgebase is a singleton.
    pub fn as_singleton(&self) -> Option<&Database> {
        if self.is_singleton() {
            self.databases.iter().next()
        } else {
            None
        }
    }

    /// Set union of two knowledgebases over the same schema (used by KM
    /// postulate (viii): `τ_φ(kb1 ∪ kb2) = τ_φ(kb1) ∪ τ_φ(kb2)`).
    pub fn union(&self, other: &Knowledgebase) -> Result<Knowledgebase> {
        let mut out = self.clone();
        for db in other.iter() {
            out.insert(db.clone())?;
        }
        Ok(out)
    }

    /// Set intersection of two knowledgebases.
    pub fn intersection(&self, other: &Knowledgebase) -> Knowledgebase {
        Knowledgebase {
            databases: self
                .databases
                .intersection(&other.databases)
                .cloned()
                .collect(),
        }
    }

    /// Whether `self ⊆ other` as sets of databases.
    pub fn is_subset(&self, other: &Knowledgebase) -> bool {
        self.databases.is_subset(&other.databases)
    }

    /// The glb operator `⊓(kb)`: the singleton knowledgebase holding the
    /// componentwise intersection of all possible worlds.  Returns the empty
    /// knowledgebase when `kb` is empty.
    pub fn glb(&self) -> Result<Knowledgebase> {
        self.fold_componentwise(Database::componentwise_intersection)
    }

    /// The lub operator `⊔(kb)`: the singleton knowledgebase holding the
    /// componentwise union of all possible worlds.
    pub fn lub(&self) -> Result<Knowledgebase> {
        self.fold_componentwise(Database::componentwise_union)
    }

    fn fold_componentwise(
        &self,
        op: impl Fn(&Database, &Database) -> Result<Database>,
    ) -> Result<Knowledgebase> {
        let mut iter = self.databases.iter();
        let Some(first) = iter.next() else {
            return Ok(Knowledgebase::empty());
        };
        let mut acc = first.clone();
        for db in iter {
            acc = op(&acc, db)?;
        }
        Ok(Knowledgebase::singleton(acc))
    }

    /// The projection operator `π_{i1,…,ik}(kb)`: project every possible
    /// world onto the listed relation symbols.
    pub fn project(&self, rels: &[RelId]) -> Knowledgebase {
        Knowledgebase {
            databases: self.databases.iter().map(|db| db.project(rels)).collect(),
        }
    }

    /// All constants occurring in any possible world.
    pub fn constants(&self) -> BTreeSet<Const> {
        self.databases
            .iter()
            .flat_map(|db| db.constants())
            .collect()
    }

    /// A fact is certain if it holds in every possible world (and the kb is
    /// non-empty).
    pub fn certainly_holds(&self, rel: RelId, t: &crate::Tuple) -> bool {
        !self.is_empty() && self.databases.iter().all(|db| db.holds(rel, t))
    }

    /// A fact is possible if it holds in at least one possible world.
    pub fn possibly_holds(&self, rel: RelId, t: &crate::Tuple) -> bool {
        self.databases.iter().any(|db| db.holds(rel, t))
    }
}

impl fmt::Debug for Knowledgebase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Knowledgebase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, db) in self.databases.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{db}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Database> for Knowledgebase {
    /// Collects databases into a knowledgebase, panicking on schema mismatch;
    /// use [`Knowledgebase::from_databases`] for fallible construction.
    fn from_iter<T: IntoIterator<Item = Database>>(iter: T) -> Self {
        Knowledgebase::from_databases(iter).expect("databases share a schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn db_with(facts: &[crate::Tuple]) -> Database {
        let mut d = Database::new();
        d.ensure_relation(r(1), 2).unwrap();
        for t in facts {
            d.insert_fact(r(1), t.clone()).unwrap();
        }
        d
    }

    #[test]
    fn glb_and_lub_match_paper_example() {
        // kb = {({a1a2, a1a4}), ({a1a4, a2a3})}; ⊓ = {a1a4}, ⊔ = all three.
        let kb = Knowledgebase::from_databases([
            db_with(&[tuple![1, 2], tuple![1, 4]]),
            db_with(&[tuple![1, 4], tuple![2, 3]]),
        ])
        .unwrap();

        let glb = kb.glb().unwrap();
        let glb_db = glb.as_singleton().unwrap();
        assert_eq!(glb_db.fact_count(), 1);
        assert!(glb_db.holds(r(1), &tuple![1, 4]));

        let lub = kb.lub().unwrap();
        let lub_db = lub.as_singleton().unwrap();
        assert_eq!(lub_db.fact_count(), 3);
    }

    #[test]
    fn schema_uniformity_is_enforced() {
        let mut kb = Knowledgebase::singleton(db_with(&[tuple![1, 2]]));
        let mut other = Database::new();
        other.insert_fact(r(2), tuple![1]).unwrap();
        assert!(kb.insert(other).is_err());
    }

    #[test]
    fn duplicate_databases_collapse() {
        let kb =
            Knowledgebase::from_databases([db_with(&[tuple![1, 2]]), db_with(&[tuple![1, 2]])])
                .unwrap();
        assert_eq!(kb.len(), 1);
        assert!(kb.is_singleton());
    }

    #[test]
    fn certain_and_possible_facts() {
        let kb = Knowledgebase::from_databases([
            db_with(&[tuple![1, 2], tuple![1, 4]]),
            db_with(&[tuple![1, 4]]),
        ])
        .unwrap();
        assert!(kb.certainly_holds(r(1), &tuple![1, 4]));
        assert!(!kb.certainly_holds(r(1), &tuple![1, 2]));
        assert!(kb.possibly_holds(r(1), &tuple![1, 2]));
        assert!(!kb.possibly_holds(r(1), &tuple![9, 9]));
        assert!(!Knowledgebase::empty().certainly_holds(r(1), &tuple![1, 4]));
    }

    #[test]
    fn glb_lub_of_empty_kb_is_empty() {
        assert!(Knowledgebase::empty().glb().unwrap().is_empty());
        assert!(Knowledgebase::empty().lub().unwrap().is_empty());
    }

    #[test]
    fn projection_applies_to_every_world() {
        let mut d1 = db_with(&[tuple![1, 2]]);
        d1.insert_fact(r(2), tuple![7]).unwrap();
        let mut d2 = db_with(&[tuple![3, 4]]);
        d2.insert_fact(r(2), tuple![8]).unwrap();
        let kb = Knowledgebase::from_databases([d1, d2]).unwrap();
        let p = kb.project(&[r(2)]);
        assert_eq!(p.len(), 2);
        for dbp in p.iter() {
            assert!(dbp.relation(r(1)).is_none());
            assert!(dbp.relation(r(2)).is_some());
        }
    }

    #[test]
    fn union_and_subset() {
        let a = Knowledgebase::singleton(db_with(&[tuple![1, 2]]));
        let b = Knowledgebase::singleton(db_with(&[tuple![3, 4]]));
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        assert!(a.is_subset(&u));
        assert!(b.is_subset(&u));
        assert_eq!(u.intersection(&a), a);
    }
}
