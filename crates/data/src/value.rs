//! Domain elements.
//!
//! The paper works over a countable set of domain elements `A = {a_i : i ∈ ω}`.
//! A [`Const`] is simply an index into that set.  Human-readable names (for
//! examples such as the flight database of Example 1.2) are kept outside the
//! value itself, in a [`crate::Vocabulary`], so that values stay `Copy` and
//! comparisons stay cheap.

use std::fmt;

/// A domain element `a_i`.
///
/// Constants are plain indices; two constants are equal iff their indices are
/// equal.  Use [`crate::Vocabulary::constant`] to obtain stable, named
/// constants when building databases by hand.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Const(pub u32);

impl Const {
    /// Creates the constant `a_i`.
    pub const fn new(i: u32) -> Self {
        Const(i)
    }

    /// The index `i` of this constant within the domain.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u32> for Const {
    fn from(i: u32) -> Self {
        Const(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_compare_by_index() {
        assert!(Const::new(1) < Const::new(2));
        assert_eq!(Const::new(7), Const::from(7));
        assert_eq!(Const::new(7).index(), 7);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Const::new(3).to_string(), "a3");
        assert_eq!(format!("{:?}", Const::new(0)), "a0");
    }
}
