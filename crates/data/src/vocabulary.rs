//! Named vocabularies: a bridge between human-readable names and the interned
//! [`Const`] / [`RelId`] indices used everywhere else.
//!
//! Databases, formulas and transformations only carry indices; a
//! [`Vocabulary`] maps names such as `"Toronto"` or `"flight"` to those
//! indices, and back again for pretty-printing.  The parser in `kbt-logic`
//! and the example applications all share this type.

use std::collections::BTreeMap;

use crate::error::DataError;
use crate::schema::RelId;
use crate::value::Const;
use crate::Result;

/// A mutable registry of constant names and relation names (with arities).
#[derive(Clone, Debug, Default)]
pub struct Vocabulary {
    const_names: Vec<String>,
    const_index: BTreeMap<String, Const>,
    rel_names: Vec<String>,
    rel_arities: Vec<usize>,
    rel_index: BTreeMap<String, RelId>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Interns a constant name, returning the same [`Const`] on repeated
    /// calls with the same name.
    pub fn constant(&mut self, name: &str) -> Const {
        if let Some(&c) = self.const_index.get(name) {
            return c;
        }
        let c = Const::new(self.const_names.len() as u32);
        self.const_names.push(name.to_string());
        self.const_index.insert(name.to_string(), c);
        c
    }

    /// Interns a relation name with its arity.
    ///
    /// Fails if the name was already registered with a different arity.
    pub fn relation(&mut self, name: &str, arity: usize) -> Result<RelId> {
        if let Some(&r) = self.rel_index.get(name) {
            if self.rel_arities[r.index() as usize] != arity {
                return Err(DataError::NameConflict {
                    name: name.to_string(),
                });
            }
            return Ok(r);
        }
        let r = RelId::new(self.rel_names.len() as u32);
        self.rel_names.push(name.to_string());
        self.rel_arities.push(arity);
        self.rel_index.insert(name.to_string(), r);
        Ok(r)
    }

    /// Looks up an already-registered constant by name.
    pub fn lookup_constant(&self, name: &str) -> Option<Const> {
        self.const_index.get(name).copied()
    }

    /// Looks up an already-registered relation by name.
    pub fn lookup_relation(&self, name: &str) -> Option<(RelId, usize)> {
        self.rel_index
            .get(name)
            .map(|&r| (r, self.rel_arities[r.index() as usize]))
    }

    /// The name of a constant, if it was registered through this vocabulary.
    pub fn constant_name(&self, c: Const) -> Option<&str> {
        self.const_names.get(c.index() as usize).map(String::as_str)
    }

    /// The name of a relation, if it was registered through this vocabulary.
    pub fn relation_name(&self, r: RelId) -> Option<&str> {
        self.rel_names.get(r.index() as usize).map(String::as_str)
    }

    /// The arity of a registered relation.
    pub fn relation_arity(&self, r: RelId) -> Option<usize> {
        self.rel_arities.get(r.index() as usize).copied()
    }

    /// Number of registered constants.
    pub fn constant_count(&self) -> usize {
        self.const_names.len()
    }

    /// Number of registered relations.
    pub fn relation_count(&self) -> usize {
        self.rel_names.len()
    }

    /// Renders a constant: its registered name, or the `a_i` fallback.
    pub fn render_constant(&self, c: Const) -> String {
        self.constant_name(c)
            .map(str::to_string)
            .unwrap_or_else(|| c.to_string())
    }

    /// Renders a relation symbol: its registered name, or the `R_i` fallback.
    pub fn render_relation(&self, r: RelId) -> String {
        self.relation_name(r)
            .map(str::to_string)
            .unwrap_or_else(|| r.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_interned() {
        let mut v = Vocabulary::new();
        let toronto = v.constant("Toronto");
        let ottawa = v.constant("Ottawa");
        assert_ne!(toronto, ottawa);
        assert_eq!(v.constant("Toronto"), toronto);
        assert_eq!(v.constant_name(toronto), Some("Toronto"));
        assert_eq!(v.lookup_constant("Ottawa"), Some(ottawa));
        assert_eq!(v.constant_count(), 2);
    }

    #[test]
    fn relations_carry_arities() {
        let mut v = Vocabulary::new();
        let flight = v.relation("flight", 2).unwrap();
        assert_eq!(v.relation("flight", 2).unwrap(), flight);
        assert!(v.relation("flight", 3).is_err());
        assert_eq!(v.relation_arity(flight), Some(2));
        assert_eq!(v.lookup_relation("flight"), Some((flight, 2)));
        assert_eq!(v.relation_name(flight), Some("flight"));
    }

    #[test]
    fn rendering_falls_back_to_indices() {
        let v = Vocabulary::new();
        assert_eq!(v.render_constant(Const::new(7)), "a7");
        assert_eq!(v.render_relation(RelId::new(3)), "R3");
    }
}
