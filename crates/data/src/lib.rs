//! # kbt-data — the relational substrate for knowledgebase transformations
//!
//! This crate implements the data model of Section 2 of *Knowledgebase
//! Transformations* (Grahne, Mendelzon, Revesz; PODS 1992 / JCSS 1997):
//!
//! * [`Const`] — domain elements `a_i` (interned, optionally named through a
//!   [`Vocabulary`]),
//! * [`Tuple`] — `k`-ary tuples of constants,
//! * [`Relation`] — finite sets of tuples of a fixed arity,
//! * [`Database`] — a finite relational structure: a mapping from relation
//!   symbols ([`RelId`]) to relations, interpreted under the closed world
//!   assumption,
//! * [`Knowledgebase`] — a finite set of databases over one [`Schema`],
//! * [`delta`] / [`order`] — componentwise symmetric differences and the
//!   Winslett possible-models partial order `≤_db` of Definition 2.1, which
//!   drives the minimal-change semantics of the update operator `τ_φ`.
//!
//! Everything is ordered deterministically so that databases and
//! knowledgebases have a canonical form, can be compared, hashed and printed
//! reproducibly, and so that set-of-databases semantics is exact.
//!
//! ## Storage layout
//!
//! Constants are interned `u32` ids ([`Const`]), and a [`Relation`] of arity
//! `k` stores its tuples as **one flat, arity-strided sorted run**: a single
//! `Arc<Vec<Const>>` in which row `i` occupies `rows[i*k .. (i+1)*k]`, rows
//! sorted lexicographically and deduplicated.  There is no per-tuple
//! allocation and no pointer tree — scans are linear walks over one
//! contiguous buffer, membership is a binary search over fixed-width row
//! chunks, and the set algebra runs as linear merges of sorted runs.
//! Cloning bumps the `Arc` (copy-on-write, O(1)); mutations unshare lazily
//! and no-op mutations never copy.  Zero-arity "flag" relations keep the
//! run empty and track presence in a separate length field.
//!
//! [`Tuple`] survives as the boundary type — parsing, rendering, and the
//! public fact APIs speak owned tuples — while hot paths (the engine's
//! joins, diffs, and deltas) consume borrowed `&[Const]` row slices
//! straight out of the run via [`Relation::iter`] / [`Relation::as_rows`].
//! See the [`relation`] module docs for the full layout and
//! copy-on-write/unsharing rules.

pub mod builder;
pub mod database;
pub mod delta;
pub mod epoch;
pub mod error;
pub mod knowledgebase;
pub mod order;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;
pub mod vocabulary;

pub use builder::{DatabaseBuilder, KnowledgebaseBuilder};
pub use database::Database;
pub use delta::DatabaseDelta;
pub use epoch::{EpochCell, EpochId, Versioned};
pub use error::DataError;
pub use knowledgebase::Knowledgebase;
pub use order::{is_minimal, minimal_elements, winslett_leq, winslett_lt};
pub use relation::Relation;
pub use schema::{RelId, Schema};
pub use tuple::Tuple;
pub use value::Const;
pub use vocabulary::Vocabulary;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DataError>;
