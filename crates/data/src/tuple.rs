//! Tuples of domain elements.

use crate::value::Const;
use std::fmt;

/// A `k`-ary tuple of constants — one row of a relation.
///
/// Tuples are immutable once constructed; their ordering is lexicographic,
/// which gives relations, databases and knowledgebases a canonical order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Box<[Const]>);

impl Tuple {
    /// Builds a tuple from the given components.
    pub fn new(components: impl Into<Vec<Const>>) -> Self {
        Tuple(components.into().into_boxed_slice())
    }

    /// The empty (zero-ary) tuple `()`, used by the paper's boolean "flag"
    /// relations (e.g. `R4` in Example 3).
    pub fn empty() -> Self {
        Tuple(Box::new([]))
    }

    /// Builds a tuple from a borrowed row slice — the boundary conversion
    /// out of a [`crate::Relation`]'s flat row storage.
    pub fn from_row(row: &[Const]) -> Self {
        Tuple(row.into())
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The components of the tuple.
    pub fn components(&self) -> &[Const] {
        &self.0
    }

    /// Component at position `i` (0-based).
    pub fn get(&self, i: usize) -> Option<Const> {
        self.0.get(i).copied()
    }

    /// Component at position `i`, panicking on an out-of-range column.
    ///
    /// The evaluation engine uses this in its join inner loops, where the
    /// column is known to be within the arity by construction and an
    /// `Option` would only add a branch.
    #[inline]
    pub fn col(&self, i: usize) -> Const {
        self.0[i]
    }

    /// Iterates over the components.
    pub fn iter(&self) -> impl Iterator<Item = Const> + '_ {
        self.0.iter().copied()
    }

    /// Projects the tuple onto the given columns (in the order listed);
    /// panics if a column is out of range.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&i| self.0[i]).collect())
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Const;

    fn index(&self, i: usize) -> &Const {
        &self.0[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Const>> for Tuple {
    fn from(v: Vec<Const>) -> Self {
        Tuple::new(v)
    }
}

impl From<&[Const]> for Tuple {
    fn from(v: &[Const]) -> Self {
        Tuple::new(v.to_vec())
    }
}

impl From<&[u32]> for Tuple {
    fn from(v: &[u32]) -> Self {
        Tuple(v.iter().copied().map(Const).collect())
    }
}

impl<const N: usize> From<[u32; N]> for Tuple {
    fn from(v: [u32; N]) -> Self {
        Tuple(v.iter().copied().map(Const).collect())
    }
}

impl<const N: usize> From<[Const; N]> for Tuple {
    fn from(v: [Const; N]) -> Self {
        Tuple::new(v.to_vec())
    }
}

/// Builds a tuple from a list of constant indices: `tuple![1, 2, 3]`.
#[macro_export]
macro_rules! tuple {
    ($($c:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Const::new($c)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tuple::from([1u32, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(Const::new(1)));
        assert_eq!(t.get(3), None);
        assert_eq!(
            t.components(),
            &[Const::new(1), Const::new(2), Const::new(3)]
        );
        assert_eq!(t.col(1), Const::new(2));
        assert_eq!(t[2], Const::new(3));
    }

    #[test]
    fn projection_reorders_and_repeats_columns() {
        let t = Tuple::from([1u32, 2, 3]);
        assert_eq!(t.project(&[2, 0]), Tuple::from([3u32, 1]));
        assert_eq!(t.project(&[1, 1]), Tuple::from([2u32, 2]));
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn empty_tuple_has_arity_zero() {
        assert_eq!(Tuple::empty().arity(), 0);
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(Tuple::from([1u32, 2]) < Tuple::from([1u32, 3]));
        assert!(Tuple::from([1u32, 2]) < Tuple::from([2u32, 0]));
        assert!(Tuple::from([1u32]) < Tuple::from([1u32, 0]));
    }

    #[test]
    fn macro_builds_tuples() {
        assert_eq!(tuple![4, 5], Tuple::from([4u32, 5]));
        assert_eq!(tuple![], Tuple::empty());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(tuple![1, 2].to_string(), "(a1,a2)");
    }
}
