//! Finite relations: sets of tuples of a fixed arity, stored as flat
//! sorted runs.
//!
//! # Storage layout
//!
//! A relation of arity `k` keeps its tuples as one arity-strided
//! `Arc<Vec<Const>>`: row `i` occupies `rows[i*k .. (i+1)*k]`, rows are
//! sorted lexicographically and deduplicated (a *sorted run*).  There is no
//! per-tuple allocation and no tree of pointers — scans are linear walks
//! over one contiguous buffer, membership is a binary search over row
//! chunks, and the set algebra (union, intersection, difference, symmetric
//! difference) runs as linear merges of two sorted runs.
//!
//! Zero-arity "flag" relations (the paper's boolean relations, e.g. `R4`
//! in Example 3) store no row data at all: `rows` stays empty and the
//! separate `len` field (0 or 1) says whether the empty tuple is present.
//!
//! # Copy-on-write and unsharing
//!
//! Cloning a relation bumps the `Arc`'s reference count; equality,
//! ordering and hashing compare *contents*, so sharing is unobservable.
//! Mutations unshare lazily:
//!
//! * no-op mutations (inserting a present row, removing an absent one)
//!   never copy;
//! * `insert`/`remove` on a shared run copy it once (`Arc::make_mut`) and
//!   then splice in place;
//! * the bulk merge operations always build a fresh run, so outstanding
//!   clones are never disturbed.
//!
//! [`Tuple`] survives as the boundary/view type: parsing, rendering and
//! the public fact APIs still speak tuples, while the engine's hot paths
//! consume `&[Const]` row slices straight out of the run.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::DataError;
use crate::tuple::Tuple;
use crate::value::Const;
use crate::Result;

/// A finite relation `r ⊆ A^k`, stored as an arity-strided sorted run.
///
/// The arity is fixed at construction time so that empty relations still know
/// their arity (the paper's zero-ary "flag" relations rely on this).  See the
/// [module docs](self) for the storage layout and copy-on-write rules.
// Field order is load-bearing: the derived `Ord` compares `arity`, then the
// concatenated sorted rows, then `len`.  For equal arities the flat rows
// compare exactly like the old lexicographic sequence-of-tuples order (rows
// are fixed-width, so the element-wise walk hits the first differing tuple
// at the same position, and a strict prefix is shorter); `len` only breaks
// the zero-arity tie, where `rows` is empty for both operands.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Relation {
    arity: usize,
    rows: Arc<Vec<Const>>,
    len: usize,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            rows: Arc::new(Vec::new()),
            len: 0,
        }
    }

    /// Creates a relation of the given arity from an iterator of tuples.
    ///
    /// Fails if any tuple has the wrong arity.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Result<Self> {
        let mut rows = Vec::new();
        let mut count = 0usize;
        for t in tuples {
            if t.arity() != arity {
                return Err(DataError::TupleArityMismatch {
                    expected: arity,
                    found: t.arity(),
                });
            }
            rows.extend_from_slice(t.components());
            count += 1;
        }
        Ok(Relation::from_row_buf(arity, rows, count))
    }

    /// Bulk constructor from a flat, arity-strided row buffer in **any**
    /// order, possibly with duplicates: sorts and deduplicates once.  Fails
    /// if the buffer length is not a multiple of the arity (for arity 0 the
    /// buffer must be empty and `rows_len` gives the number of empty-tuple
    /// insertions).
    pub fn from_rows(arity: usize, rows: Vec<Const>, rows_len: usize) -> Result<Self> {
        if arity == 0 {
            if !rows.is_empty() {
                return Err(DataError::TupleArityMismatch {
                    expected: 0,
                    found: 1,
                });
            }
        } else if rows.len() != arity * rows_len {
            return Err(DataError::TupleArityMismatch {
                expected: arity,
                found: rows.len() % arity,
            });
        }
        Ok(Relation::from_row_buf(arity, rows, rows_len))
    }

    /// Trusted bulk constructor: `rows` must already be a sorted,
    /// deduplicated, arity-strided run.  This is the loaders' fast path —
    /// the invariant is verified (cheaply, one linear scan) and violations
    /// are reported as [`DataError::UnsortedRows`] instead of silently
    /// corrupting the relation.
    pub fn from_sorted_rows(arity: usize, rows: Vec<Const>) -> Result<Self> {
        if arity == 0 {
            if !rows.is_empty() {
                return Err(DataError::TupleArityMismatch {
                    expected: 0,
                    found: 1,
                });
            }
            return Ok(Relation::empty(0));
        }
        if !rows.len().is_multiple_of(arity) {
            return Err(DataError::TupleArityMismatch {
                expected: arity,
                found: rows.len() % arity,
            });
        }
        let len = rows.len() / arity;
        for w in 1..len {
            let prev = &rows[(w - 1) * arity..w * arity];
            let next = &rows[w * arity..(w + 1) * arity];
            if prev >= next {
                return Err(DataError::UnsortedRows { position: w });
            }
        }
        Ok(Relation {
            arity,
            rows: Arc::new(rows),
            len,
        })
    }

    /// Builds from an unsorted (possibly duplicated) row buffer: sort rows
    /// as fixed-width chunks, dedup, done.
    fn from_row_buf(arity: usize, mut rows: Vec<Const>, count: usize) -> Self {
        if arity == 0 {
            return Relation {
                arity,
                rows: Arc::new(Vec::new()),
                len: usize::from(count > 0),
            };
        }
        debug_assert_eq!(rows.len(), arity * count);
        let sorted = sort_dedup_rows(&mut rows, arity);
        rows.truncate(sorted * arity);
        Relation {
            arity,
            rows: Arc::new(rows),
            len: sorted,
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw sorted run: `len() * arity()` constants, row-major.  Empty
    /// for zero-arity relations regardless of [`Self::len`].
    pub fn as_rows(&self) -> &[Const] {
        &self.rows
    }

    /// Row `i` of the sorted run (`i < len()`); the empty slice for
    /// zero-arity relations.
    pub fn row(&self, i: usize) -> &[Const] {
        if self.arity == 0 {
            debug_assert!(i < self.len);
            &[]
        } else {
            &self.rows[i * self.arity..(i + 1) * self.arity]
        }
    }

    /// Binary search for a row: `Ok(index)` if present, `Err(insertion)` if
    /// absent.  Zero-arity relations treat the empty row as index 0.
    fn find_row(&self, row: &[Const]) -> std::result::Result<usize, usize> {
        if self.arity == 0 {
            return if self.len == 1 { Ok(0) } else { Err(0) };
        }
        let arity = self.arity;
        let rows = &self.rows[..];
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match rows[mid * arity..(mid + 1) * arity].cmp(row) {
                Ordering::Less => lo = mid + 1,
                Ordering::Greater => hi = mid,
                Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    ///
    /// Copy-on-write: a redundant insertion never copies a shared run; a
    /// real insertion into a shared run copies it once, then splices.  Note
    /// the splice is `O(n)` — bulk loads should use [`Self::from_rows`] /
    /// [`Self::from_sorted_rows`] or the merge operations instead of a loop
    /// of single inserts.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.arity {
            return Err(DataError::TupleArityMismatch {
                expected: self.arity,
                found: t.arity(),
            });
        }
        Ok(self.insert_row(t.components()))
    }

    /// [`Self::insert`] for a raw row slice (length must equal the arity,
    /// which the caller has already checked).
    pub fn insert_row(&mut self, row: &[Const]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        match self.find_row(row) {
            Ok(_) => false,
            Err(at) => {
                if self.arity > 0 {
                    let rows = Arc::make_mut(&mut self.rows);
                    let insert_at = at * self.arity;
                    rows.splice(insert_at..insert_at, row.iter().copied());
                }
                self.len += 1;
                true
            }
        }
    }

    /// Removes a tuple; returns `true` if it was present.  Copy-on-write
    /// like [`Self::insert`]: removing an absent tuple never copies.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if t.arity() != self.arity {
            return false;
        }
        self.remove_row(t.components())
    }

    /// [`Self::remove`] for a raw row slice.
    pub fn remove_row(&mut self, row: &[Const]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        match self.find_row(row) {
            Err(_) => false,
            Ok(at) => {
                if self.arity > 0 {
                    let rows = Arc::make_mut(&mut self.rows);
                    let start = at * self.arity;
                    rows.drain(start..start + self.arity);
                }
                self.len -= 1;
                true
            }
        }
    }

    /// Whether the tuple is present (galloping/binary search over the run).
    pub fn contains(&self, t: &Tuple) -> bool {
        t.arity() == self.arity && self.find_row(t.components()).is_ok()
    }

    /// Whether the raw row is present.  A row of the wrong length is
    /// simply absent (mirroring [`Relation::contains`]).
    pub fn contains_row(&self, row: &[Const]) -> bool {
        row.len() == self.arity && self.find_row(row).is_ok()
    }

    /// Iterates over the rows in canonical (sorted) order as `&[Const]`
    /// slices.  Zero-arity relations yield `len()` empty slices.
    pub fn iter(&self) -> RowIter<'_> {
        RowIter {
            rows: &self.rows,
            arity: self.arity,
            remaining: self.len,
        }
    }

    /// Iterates over the rows as owned [`Tuple`]s — the boundary
    /// convenience for callers that render or store facts; hot paths should
    /// iterate [`Self::iter`] rows instead.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.iter().map(Tuple::from_row)
    }

    /// All constants occurring in the relation.
    pub fn constants(&self) -> BTreeSet<Const> {
        self.rows.iter().copied().collect()
    }

    /// Set union (same arity assumed; checked).  `O(n + m)` merge of the
    /// two sorted runs; when one side is empty the other's run is shared,
    /// not copied.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        self.check_same_arity(other)?;
        if self.arity == 0 {
            return Ok(Relation::flag(self.len.max(other.len)));
        }
        if self.is_empty() || Arc::ptr_eq(&self.rows, &other.rows) {
            return Ok(other.clone());
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        let arity = self.arity;
        let mut out = Vec::with_capacity(self.rows.len().max(other.rows.len()));
        let mut count = 0usize;
        let mut merge = MergeRows::new(&self.rows, &other.rows, arity);
        while let Some((row, _)) = merge.next() {
            out.extend_from_slice(row);
            count += 1;
        }
        Ok(Relation {
            arity,
            rows: Arc::new(out),
            len: count,
        })
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Relation) -> Result<Relation> {
        self.check_same_arity(other)?;
        if self.arity == 0 {
            return Ok(Relation::flag(self.len.min(other.len)));
        }
        if Arc::ptr_eq(&self.rows, &other.rows) {
            return Ok(self.clone());
        }
        if self.is_empty() || other.is_empty() {
            return Ok(Relation::empty(self.arity));
        }
        let arity = self.arity;
        let mut out = Vec::new();
        let mut count = 0usize;
        let mut merge = MergeRows::new(&self.rows, &other.rows, arity);
        while let Some((row, from)) = merge.next() {
            if from == MergeSide::Both {
                out.extend_from_slice(row);
                count += 1;
            }
        }
        Ok(Relation {
            arity,
            rows: Arc::new(out),
            len: count,
        })
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        self.check_same_arity(other)?;
        if self.arity == 0 {
            return Ok(Relation::flag(if other.len == 0 { self.len } else { 0 }));
        }
        if Arc::ptr_eq(&self.rows, &other.rows) {
            return Ok(Relation::empty(self.arity));
        }
        if self.is_empty() || other.is_empty() {
            return Ok(self.clone());
        }
        let arity = self.arity;
        let mut out = Vec::new();
        let mut count = 0usize;
        let mut merge = MergeRows::new(&self.rows, &other.rows, arity);
        while let Some((row, from)) = merge.next() {
            if from == MergeSide::Left {
                out.extend_from_slice(row);
                count += 1;
            }
        }
        Ok(Relation {
            arity,
            rows: Arc::new(out),
            len: count,
        })
    }

    /// Symmetric difference `self Δ other = (self \ other) ∪ (other \ self)`,
    /// the building block of the Winslett order (Definition 2.1).
    pub fn symmetric_difference(&self, other: &Relation) -> Result<Relation> {
        self.check_same_arity(other)?;
        if self.arity == 0 {
            return Ok(Relation::flag(self.len ^ other.len));
        }
        if Arc::ptr_eq(&self.rows, &other.rows) {
            return Ok(Relation::empty(self.arity));
        }
        let arity = self.arity;
        let mut out = Vec::new();
        let mut count = 0usize;
        let mut merge = MergeRows::new(&self.rows, &other.rows, arity);
        while let Some((row, from)) = merge.next() {
            if from != MergeSide::Both {
                out.extend_from_slice(row);
                count += 1;
            }
        }
        Ok(Relation {
            arity,
            rows: Arc::new(out),
            len: count,
        })
    }

    /// Applies a batch update in one linear merge: returns
    /// `(self \ dels) ∪ adds`.  Both `adds` and `dels` must be sorted,
    /// deduplicated, arity-strided runs, and they must be disjoint from each
    /// other; `adds ∩ self` and `dels \ self` are tolerated (redundant adds
    /// and misses are skipped).  This is the engine mirror's flush
    /// primitive: a whole delta's worth of mutations costs one `O(n + a +
    /// d)` pass instead of `O(n)` per fact, and the fresh run never
    /// disturbs outstanding copy-on-write snapshots.
    pub fn merge_rows(&self, adds: &[Const], dels: &[Const]) -> Result<Relation> {
        if self.arity == 0 {
            // adds/dels are disjoint runs of the empty row: at most one of
            // them is non-empty (len is tracked by the caller via the
            // parity rule, so receiving both would be a caller bug).
            debug_assert!(adds.is_empty() || dels.is_empty());
            let len = if !adds.is_empty() {
                1
            } else if !dels.is_empty() {
                0
            } else {
                self.len
            };
            return Ok(Relation::flag(len));
        }
        if !adds.len().is_multiple_of(self.arity) || !dels.len().is_multiple_of(self.arity) {
            return Err(DataError::TupleArityMismatch {
                expected: self.arity,
                found: (adds.len().max(dels.len())) % self.arity,
            });
        }
        if adds.is_empty() && dels.is_empty() {
            return Ok(self.clone());
        }
        let arity = self.arity;
        let mut out = Vec::with_capacity(self.rows.len() + adds.len());
        let mut count = 0usize;
        let mut dels = RowCursor::new(dels, arity);
        // 3-way merge: walk (self ∪ adds) in order, dropping rows matched
        // by the deletion cursor.
        let mut merge = MergeRows::new(&self.rows, adds, arity);
        while let Some((row, _from)) = merge.next() {
            if dels.skip_to(row) {
                continue;
            }
            out.extend_from_slice(row);
            count += 1;
        }
        Ok(Relation {
            arity,
            rows: Arc::new(out),
            len: count,
        })
    }

    /// Whether both relations share the same underlying run — an `O(1)`
    /// pointer check proving identical contents without comparing a single
    /// row.  Copy-on-write keeps untouched relations on the same `Arc`
    /// across database clones, so diff-style callers use this to skip
    /// whole relations; `false` only means "unknown", never "different".
    pub fn shares_rows(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.len == other.len && Arc::ptr_eq(&self.rows, &other.rows)
    }

    /// Whether `self ⊆ other`.  Gallops (binary-searches each of this
    /// relation's rows) when this side is much smaller, otherwise runs a
    /// linear merge walk.
    pub fn is_subset(&self, other: &Relation) -> bool {
        if self.arity != other.arity || self.len > other.len {
            return false;
        }
        if self.arity == 0 || self.is_empty() {
            return true;
        }
        if Arc::ptr_eq(&self.rows, &other.rows) {
            return true;
        }
        // galloping pays off when |self| * log|other| < |self| + |other|
        let log_other = (usize::BITS - other.len.leading_zeros()) as usize;
        if self.len * log_other < self.len + other.len {
            return self.iter().all(|row| other.contains_row(row));
        }
        let mut merge = MergeRows::new(&self.rows, &other.rows, self.arity);
        while let Some((_, from)) = merge.next() {
            if from == MergeSide::Left {
                return false;
            }
        }
        true
    }

    /// Whether `self ⊊ other`.
    pub fn is_proper_subset(&self, other: &Relation) -> bool {
        self.len < other.len && self.is_subset(other)
    }

    /// A zero-arity relation holding the empty tuple iff `len > 0`.
    fn flag(len: usize) -> Relation {
        Relation {
            arity: 0,
            rows: Arc::new(Vec::new()),
            len: usize::from(len > 0),
        }
    }

    fn check_same_arity(&self, other: &Relation) -> Result<()> {
        if self.arity != other.arity {
            Err(DataError::TupleArityMismatch {
                expected: self.arity,
                found: other.arity,
            })
        } else {
            Ok(())
        }
    }
}

/// Sorts an arity-strided row buffer in place (as fixed-width chunks) and
/// compacts duplicates to the front; returns the deduplicated row count
/// (the caller truncates to `count * arity`).  `arity` must be positive.
///
/// This is the low-level primitive behind [`Relation::from_rows`], exposed
/// so engines batching derived rows into strided buffers can canonicalise
/// them without round-tripping through `Relation`.
pub fn sort_dedup_rows(rows: &mut [Const], arity: usize) -> usize {
    debug_assert!(arity > 0);
    let count = rows.len() / arity;
    if count <= 1 {
        return count;
    }
    // Sort an index permutation, then apply it — avoids a chunked sort's
    // per-comparison bounds checks and keeps the row moves to one pass.
    let mut order: Vec<u32> = (0..count as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        rows[a as usize * arity..(a as usize + 1) * arity]
            .cmp(&rows[b as usize * arity..(b as usize + 1) * arity])
    });
    let mut out: Vec<Const> = Vec::with_capacity(rows.len());
    let mut kept = 0usize;
    for &idx in &order {
        let row = &rows[idx as usize * arity..(idx as usize + 1) * arity];
        if kept > 0 && &out[(kept - 1) * arity..kept * arity] == row {
            continue;
        }
        out.extend_from_slice(row);
        kept += 1;
    }
    rows[..out.len()].copy_from_slice(&out);
    kept
}

/// Iterator over the rows of a sorted run as `&[Const]` slices.
#[derive(Clone, Debug)]
pub struct RowIter<'a> {
    rows: &'a [Const],
    arity: usize,
    remaining: usize,
}

impl<'a> RowIter<'a> {
    /// Iterates `len` rows of width `arity` out of a raw strided buffer:
    /// `rows` must hold exactly `len * arity` constants (empty for arity 0,
    /// where `len` counts empty tuples).  Companion to
    /// [`sort_dedup_rows`] for engines working on raw row buffers.
    pub fn over(rows: &'a [Const], arity: usize, len: usize) -> Self {
        debug_assert_eq!(rows.len(), arity * len);
        RowIter {
            rows,
            arity,
            remaining: len,
        }
    }
}

impl<'a> Iterator for RowIter<'a> {
    type Item = &'a [Const];

    fn next(&mut self) -> Option<&'a [Const]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.arity == 0 {
            return Some(&[]);
        }
        let (row, rest) = self.rows.split_at(self.arity);
        self.rows = rest;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RowIter<'_> {}

/// Which side(s) of a two-run merge produced the current row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MergeSide {
    Left,
    Right,
    Both,
}

/// Linear merge over two sorted runs of the same arity, yielding each
/// distinct row once together with the side(s) it came from.
struct MergeRows<'a> {
    left: RowCursor<'a>,
    right: RowCursor<'a>,
}

impl<'a> MergeRows<'a> {
    fn new(left: &'a [Const], right: &'a [Const], arity: usize) -> Self {
        MergeRows {
            left: RowCursor::new(left, arity),
            right: RowCursor::new(right, arity),
        }
    }

    #[allow(clippy::should_implement_trait)] // lending iterator shape
    fn next(&mut self) -> Option<(&'a [Const], MergeSide)> {
        match (self.left.current(), self.right.current()) {
            (None, None) => None,
            (Some(l), None) => {
                self.left.advance();
                Some((l, MergeSide::Left))
            }
            (None, Some(r)) => {
                self.right.advance();
                Some((r, MergeSide::Right))
            }
            (Some(l), Some(r)) => match l.cmp(r) {
                Ordering::Less => {
                    self.left.advance();
                    Some((l, MergeSide::Left))
                }
                Ordering::Greater => {
                    self.right.advance();
                    Some((r, MergeSide::Right))
                }
                Ordering::Equal => {
                    self.left.advance();
                    self.right.advance();
                    Some((l, MergeSide::Both))
                }
            },
        }
    }
}

/// A cursor over one sorted run.
struct RowCursor<'a> {
    rows: &'a [Const],
    arity: usize,
}

impl<'a> RowCursor<'a> {
    fn new(rows: &'a [Const], arity: usize) -> Self {
        RowCursor { rows, arity }
    }

    fn current(&self) -> Option<&'a [Const]> {
        if self.rows.is_empty() {
            None
        } else {
            Some(&self.rows[..self.arity])
        }
    }

    fn advance(&mut self) {
        self.rows = &self.rows[self.arity..];
    }

    /// Advances past every row `< row`; returns `true` if the cursor now
    /// sits exactly on `row`.
    fn skip_to(&mut self, row: &[Const]) -> bool {
        while let Some(cur) = self.current() {
            match cur.cmp(row) {
                Ordering::Less => self.advance(),
                Ordering::Equal => return true,
                Ordering::Greater => return false,
            }
        }
        false
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, row) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, c) in row.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(arity: usize, ts: &[Tuple]) -> Relation {
        Relation::from_tuples(arity, ts.iter().cloned()).unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut r = Relation::empty(2);
        assert!(r.insert(tuple![1, 2]).unwrap());
        assert!(!r.insert(tuple![1, 2]).unwrap());
        assert!(r.contains(&tuple![1, 2]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_is_enforced() {
        let mut r = Relation::empty(2);
        assert!(r.insert(tuple![1]).is_err());
        assert!(Relation::from_tuples(1, [tuple![1, 2]]).is_err());
    }

    #[test]
    fn zero_ary_relation_holds_at_most_the_empty_tuple() {
        let mut r = Relation::empty(0);
        assert!(r.insert(Tuple::empty()).unwrap());
        assert!(!r.insert(Tuple::empty()).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::empty()));
        assert!(r.remove(&Tuple::empty()));
        assert!(r.is_empty());
    }

    #[test]
    fn rows_stay_sorted_and_deduplicated() {
        let mut r = Relation::empty(2);
        for t in [tuple![3, 1], tuple![1, 2], tuple![2, 9], tuple![1, 2]] {
            r.insert(t).unwrap();
        }
        let rows: Vec<Vec<u32>> = r
            .iter()
            .map(|row| row.iter().map(|c| c.index()).collect())
            .collect();
        assert_eq!(rows, vec![vec![1, 2], vec![2, 9], vec![3, 1]]);
        assert_eq!(r.as_rows().len(), 6);
        assert_eq!(r.row(1), &[Const::new(2), Const::new(9)]);
    }

    #[test]
    fn set_operations() {
        let a = rel(2, &[tuple![1, 2], tuple![1, 4]]);
        let b = rel(2, &[tuple![1, 4], tuple![2, 3]]);
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.intersection(&b).unwrap().len(), 1);
        assert_eq!(a.difference(&b).unwrap().len(), 1);
        let d = a.symmetric_difference(&b).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.contains(&tuple![1, 2]));
        assert!(d.contains(&tuple![2, 3]));
    }

    #[test]
    fn zero_ary_set_operations() {
        let on = rel(0, &[Tuple::empty()]);
        let off = Relation::empty(0);
        assert_eq!(on.union(&off).unwrap().len(), 1);
        assert_eq!(on.intersection(&off).unwrap().len(), 0);
        assert_eq!(on.difference(&off).unwrap().len(), 1);
        assert_eq!(on.symmetric_difference(&off).unwrap().len(), 1);
        assert_eq!(on.symmetric_difference(&on).unwrap().len(), 0);
        assert!(off.is_subset(&on));
        assert!(!on.is_subset(&off));
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let mut a = rel(2, &[tuple![1, 2], tuple![3, 4]]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.rows, &b.rows), "clone must share");
        // no-op mutations keep sharing
        assert!(!a.insert(tuple![1, 2]).unwrap());
        assert!(!a.remove(&tuple![9, 9]));
        assert!(Arc::ptr_eq(&a.rows, &b.rows));
        // a real mutation unshares and leaves the clone untouched
        assert!(a.insert(tuple![5, 6]).unwrap());
        assert!(!Arc::ptr_eq(&a.rows, &b.rows));
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert!(!b.contains(&tuple![5, 6]));
    }

    #[test]
    fn symmetric_difference_with_self_is_empty() {
        let a = rel(2, &[tuple![1, 2], tuple![1, 4]]);
        assert!(a.symmetric_difference(&a).unwrap().is_empty());
    }

    #[test]
    fn subset_checks() {
        let small = rel(2, &[tuple![1, 2]]);
        let big = rel(2, &[tuple![1, 2], tuple![1, 4]]);
        assert!(small.is_subset(&big));
        assert!(small.is_proper_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(!big.is_proper_subset(&big));
    }

    #[test]
    fn constants_are_collected() {
        let a = rel(2, &[tuple![1, 2], tuple![1, 4]]);
        let consts: Vec<_> = a.constants().into_iter().collect();
        assert_eq!(consts, vec![Const::new(1), Const::new(2), Const::new(4)]);
    }

    #[test]
    fn mixed_arity_set_operations_fail() {
        let a = rel(2, &[tuple![1, 2]]);
        let b = rel(1, &[tuple![1]]);
        assert!(a.union(&b).is_err());
        assert!(a.symmetric_difference(&b).is_err());
    }

    #[test]
    fn ordering_matches_sequence_of_tuples() {
        // {(5,5)} vs {(1,2),(3,4)}: the first differing row decides before
        // the lengths do — exactly like comparing the tuple sequences.
        let single = rel(2, &[tuple![5, 5]]);
        let double = rel(2, &[tuple![1, 2], tuple![3, 4]]);
        assert!(double < single);
        // a strict prefix is smaller
        let prefix = rel(2, &[tuple![1, 2]]);
        assert!(prefix < double);
        // arity dominates
        assert!(rel(1, &[tuple![9]]) < rel(2, &[tuple![1, 1]]));
        // zero-arity: {} < {()}
        assert!(Relation::empty(0) < rel(0, &[Tuple::empty()]));
    }

    #[test]
    fn from_sorted_rows_verifies_the_run() {
        let c = Const::new;
        let ok = Relation::from_sorted_rows(2, vec![c(1), c(2), c(3), c(4)]).unwrap();
        assert_eq!(ok.len(), 2);
        assert!(Relation::from_sorted_rows(2, vec![c(3), c(4), c(1), c(2)]).is_err());
        assert!(Relation::from_sorted_rows(2, vec![c(1), c(2), c(1), c(2)]).is_err());
        assert!(Relation::from_sorted_rows(2, vec![c(1), c(2), c(3)]).is_err());
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let c = Const::new;
        let r = Relation::from_rows(2, vec![c(3), c(4), c(1), c(2), c(3), c(4)], 3).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), &[c(1), c(2)]);
        assert!(Relation::from_rows(2, vec![c(1)], 1).is_err());
    }

    #[test]
    fn merge_rows_applies_batched_updates() {
        let c = Const::new;
        let base = rel(2, &[tuple![1, 2], tuple![3, 4], tuple![5, 6]]);
        let adds = vec![c(2), c(2), c(4), c(4)];
        let dels = vec![c(3), c(4)];
        let out = base.merge_rows(&adds, &dels).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.contains(&tuple![2, 2]));
        assert!(out.contains(&tuple![4, 4]));
        assert!(!out.contains(&tuple![3, 4]));
        // no-op merge shares storage
        let same = base.merge_rows(&[], &[]).unwrap();
        assert!(Arc::ptr_eq(&base.rows, &same.rows));
        // an outstanding clone is never disturbed
        let snapshot = base.clone();
        let _ = base.merge_rows(&adds, &dels).unwrap();
        assert_eq!(snapshot, base);
    }
}
