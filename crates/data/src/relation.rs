//! Finite relations: sets of tuples of a fixed arity.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use crate::error::DataError;
use crate::tuple::Tuple;
use crate::value::Const;
use crate::Result;

/// A finite relation `r ⊆ A^k`.
///
/// The arity is fixed at construction time so that empty relations still know
/// their arity (the paper's zero-ary "flag" relations rely on this).
///
/// The tuple set is **copy-on-write**: cloning a relation only bumps a
/// reference count, and a mutation copies the underlying set only when it is
/// actually shared.  Databases are cloned pervasively (every transformation
/// step produces new ones), and the engine's incremental sessions hand out
/// snapshots of maintained relations — both get `O(1)` clones this way,
/// while equality, ordering and hashing still compare *contents* exactly as
/// before (the `Arc` is transparent).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Relation {
    arity: usize,
    tuples: Arc<BTreeSet<Tuple>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation {
            arity,
            tuples: Arc::new(BTreeSet::new()),
        }
    }

    /// Creates a relation of the given arity from an iterator of tuples.
    ///
    /// Fails if any tuple has the wrong arity.
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Result<Self> {
        let mut r = Relation::empty(arity);
        for t in tuples {
            r.insert(t)?;
        }
        Ok(r)
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    ///
    /// Copy-on-write: if the tuple set is shared with other clones *and*
    /// the tuple is new, the set is copied first; redundant insertions
    /// never copy.  When the set is unshared — the common case on the
    /// engine's hot path, where a maintained mirror absorbs every derived
    /// fact — this is a single tree walk, not a contains-then-insert pair.
    pub fn insert(&mut self, t: Tuple) -> Result<bool> {
        if t.arity() != self.arity {
            return Err(DataError::TupleArityMismatch {
                expected: self.arity,
                found: t.arity(),
            });
        }
        if let Some(set) = Arc::get_mut(&mut self.tuples) {
            return Ok(set.insert(t));
        }
        if self.tuples.contains(&t) {
            return Ok(false);
        }
        Ok(Arc::make_mut(&mut self.tuples).insert(t))
    }

    /// Removes a tuple; returns `true` if it was present.  Copy-on-write
    /// like [`Self::insert`]: removing an absent tuple never copies.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if let Some(set) = Arc::get_mut(&mut self.tuples) {
            return set.remove(t);
        }
        if !self.tuples.contains(t) {
            return false;
        }
        Arc::make_mut(&mut self.tuples).remove(t)
    }

    /// Whether the tuple is present.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Iterates over the tuples in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// All constants occurring in the relation.
    pub fn constants(&self) -> BTreeSet<Const> {
        self.tuples.iter().flat_map(|t| t.iter()).collect()
    }

    /// Set union (same arity assumed; checked).
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        self.check_same_arity(other)?;
        Ok(Relation {
            arity: self.arity,
            tuples: Arc::new(self.tuples.union(&other.tuples).cloned().collect()),
        })
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Relation) -> Result<Relation> {
        self.check_same_arity(other)?;
        Ok(Relation {
            arity: self.arity,
            tuples: Arc::new(self.tuples.intersection(&other.tuples).cloned().collect()),
        })
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        self.check_same_arity(other)?;
        Ok(Relation {
            arity: self.arity,
            tuples: Arc::new(self.tuples.difference(&other.tuples).cloned().collect()),
        })
    }

    /// Symmetric difference `self Δ other = (self \ other) ∪ (other \ self)`,
    /// the building block of the Winslett order (Definition 2.1).
    pub fn symmetric_difference(&self, other: &Relation) -> Result<Relation> {
        self.check_same_arity(other)?;
        Ok(Relation {
            arity: self.arity,
            tuples: Arc::new(
                self.tuples
                    .symmetric_difference(&other.tuples)
                    .cloned()
                    .collect(),
            ),
        })
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.tuples.is_subset(&other.tuples)
    }

    /// Whether `self ⊊ other`.
    pub fn is_proper_subset(&self, other: &Relation) -> bool {
        self.is_subset(other) && self.tuples.len() < other.tuples.len()
    }

    fn check_same_arity(&self, other: &Relation) -> Result<()> {
        if self.arity != other.arity {
            Err(DataError::TupleArityMismatch {
                expected: self.arity,
                found: other.arity,
            })
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(arity: usize, ts: &[Tuple]) -> Relation {
        Relation::from_tuples(arity, ts.iter().cloned()).unwrap()
    }

    #[test]
    fn insert_and_contains() {
        let mut r = Relation::empty(2);
        assert!(r.insert(tuple![1, 2]).unwrap());
        assert!(!r.insert(tuple![1, 2]).unwrap());
        assert!(r.contains(&tuple![1, 2]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_is_enforced() {
        let mut r = Relation::empty(2);
        assert!(r.insert(tuple![1]).is_err());
        assert!(Relation::from_tuples(1, [tuple![1, 2]]).is_err());
    }

    #[test]
    fn zero_ary_relation_holds_at_most_the_empty_tuple() {
        let mut r = Relation::empty(0);
        assert!(r.insert(Tuple::empty()).unwrap());
        assert!(!r.insert(Tuple::empty()).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn set_operations() {
        let a = rel(2, &[tuple![1, 2], tuple![1, 4]]);
        let b = rel(2, &[tuple![1, 4], tuple![2, 3]]);
        assert_eq!(a.union(&b).unwrap().len(), 3);
        assert_eq!(a.intersection(&b).unwrap().len(), 1);
        assert_eq!(a.difference(&b).unwrap().len(), 1);
        let d = a.symmetric_difference(&b).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.contains(&tuple![1, 2]));
        assert!(d.contains(&tuple![2, 3]));
    }

    #[test]
    fn clones_share_storage_until_mutated() {
        let mut a = rel(2, &[tuple![1, 2], tuple![3, 4]]);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.tuples, &b.tuples), "clone must share");
        // no-op mutations keep sharing
        assert!(!a.insert(tuple![1, 2]).unwrap());
        assert!(!a.remove(&tuple![9, 9]));
        assert!(Arc::ptr_eq(&a.tuples, &b.tuples));
        // a real mutation unshares and leaves the clone untouched
        assert!(a.insert(tuple![5, 6]).unwrap());
        assert!(!Arc::ptr_eq(&a.tuples, &b.tuples));
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 2);
        assert!(!b.contains(&tuple![5, 6]));
    }

    #[test]
    fn symmetric_difference_with_self_is_empty() {
        let a = rel(2, &[tuple![1, 2], tuple![1, 4]]);
        assert!(a.symmetric_difference(&a).unwrap().is_empty());
    }

    #[test]
    fn subset_checks() {
        let small = rel(2, &[tuple![1, 2]]);
        let big = rel(2, &[tuple![1, 2], tuple![1, 4]]);
        assert!(small.is_subset(&big));
        assert!(small.is_proper_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(!big.is_proper_subset(&big));
    }

    #[test]
    fn constants_are_collected() {
        let a = rel(2, &[tuple![1, 2], tuple![1, 4]]);
        let consts: Vec<_> = a.constants().into_iter().collect();
        assert_eq!(consts, vec![Const::new(1), Const::new(2), Const::new(4)]);
    }

    #[test]
    fn mixed_arity_set_operations_fail() {
        let a = rel(2, &[tuple![1, 2]]);
        let b = rel(1, &[tuple![1]]);
        assert!(a.union(&b).is_err());
        assert!(a.symmetric_difference(&b).is_err());
    }
}
