//! Error types for the relational substrate.

use std::fmt;

use crate::schema::{RelId, Schema};

/// Errors produced when constructing or combining relational objects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataError {
    /// A relation symbol was used with two different arities.
    ArityMismatch {
        /// The offending relation symbol.
        rel: RelId,
        /// The arity already registered for the symbol.
        expected: usize,
        /// The conflicting arity.
        found: usize,
    },
    /// A tuple's arity did not match the relation it was inserted into.
    TupleArityMismatch {
        /// The relation's arity.
        expected: usize,
        /// The tuple's arity.
        found: usize,
    },
    /// Two databases (or knowledgebases) that must share a schema do not.
    SchemaMismatch {
        /// Schema of the left operand.
        left: Schema,
        /// Schema of the right operand.
        right: Schema,
    },
    /// The candidate schema does not dominate the base schema in a Winslett
    /// comparison.
    SchemaNotDominated {
        /// Schema of the base database.
        base: Schema,
        /// Schema of the candidate database.
        candidate: Schema,
    },
    /// A name was registered twice with conflicting meanings in a
    /// [`crate::Vocabulary`].
    NameConflict {
        /// The conflicting name.
        name: String,
    },
    /// A buffer passed to [`crate::Relation::from_sorted_rows`] was not a
    /// strictly ascending run of rows.
    UnsortedRows {
        /// Index of the first row that is ≤ its predecessor.
        position: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch {
                rel,
                expected,
                found,
            } => write!(
                f,
                "relation {rel} used with arity {found}, but it has arity {expected}"
            ),
            DataError::TupleArityMismatch { expected, found } => write!(
                f,
                "tuple of arity {found} inserted into a relation of arity {expected}"
            ),
            DataError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left} vs {right}")
            }
            DataError::SchemaNotDominated { base, candidate } => write!(
                f,
                "candidate schema {candidate} does not dominate base schema {base}"
            ),
            DataError::NameConflict { name } => {
                write!(f, "name {name:?} registered with a conflicting meaning")
            }
            DataError::UnsortedRows { position } => write!(
                f,
                "row buffer is not a strictly ascending sorted run (row {position} \
                 is not greater than its predecessor)"
            ),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usable_messages() {
        let e = DataError::ArityMismatch {
            rel: RelId::new(1),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("R1"));
        let e = DataError::TupleArityMismatch {
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("arity 1"));
        let e = DataError::NameConflict {
            name: "flight".into(),
        };
        assert!(e.to_string().contains("flight"));
    }
}
