//! Differential proptest for the flat sorted-run [`Relation`]: random
//! interleavings of point mutations (`insert` / `remove`), bulk set algebra
//! (`union` / `intersection` / `difference` / `symmetric_difference`) and
//! copy-on-write snapshots are replayed against a `BTreeSet<Tuple>` as the
//! reference model, and the run must stay **byte-identical** to the model
//! after every step: same length, same rows in the same (lexicographic)
//! order, same membership answers.
//!
//! `Tuple`'s derived `Ord` is the lexicographic order the old boxed-tuple
//! `BTreeSet` storage iterated in, so "iterates like the model" is exactly
//! the representation-change invariant of the flat-storage refactor.  The
//! snapshots held across later mutations pin the copy-on-write contract: a
//! clone is frozen at its contents, however the original is mutated
//! afterwards.  Zero-arity relations (the paper's boolean "flag"
//! relations) get their own script, modelled by a plain `bool`.

use std::collections::BTreeSet;

use kbt_data::{tuple, Const, Relation, Tuple};
use proptest::prelude::*;

/// One scripted operation against both stores (arity 2).
#[derive(Clone, Debug)]
enum Op {
    Insert(u32, u32),
    Remove(u32, u32),
    Union(Vec<(u32, u32)>),
    Intersection(Vec<(u32, u32)>),
    Difference(Vec<(u32, u32)>),
    SymmetricDifference(Vec<(u32, u32)>),
    /// Take (and hold) a snapshot here, so later mutations run against an
    /// outstanding copy-on-write reader.
    Snapshot,
}

fn decode(code: (u8, u32, u32, Vec<(u32, u32)>)) -> Op {
    let (op, a, b, rows) = code;
    match op {
        // insert-biased so relations actually grow
        0..=2 => Op::Insert(a, b),
        3..=4 => Op::Remove(a, b),
        5 => Op::Union(rows),
        6 => Op::Intersection(rows),
        7 => Op::Difference(rows),
        8 => Op::SymmetricDifference(rows),
        _ => Op::Snapshot,
    }
}

fn arb_script() -> impl Strategy<Value = Vec<Op>> {
    // constants in 0..6 so removes and intersections genuinely hit
    // existing tuples instead of missing a sparse domain
    let rows = proptest::collection::vec((0u32..6, 0u32..6), 0..8);
    proptest::collection::vec((0u8..10, 0u32..6, 0u32..6, rows), 1..80)
        .prop_map(|codes| codes.into_iter().map(decode).collect())
}

fn other_relation(rows: &[(u32, u32)]) -> (Relation, BTreeSet<Tuple>) {
    let tuples: BTreeSet<Tuple> = rows.iter().map(|&(a, b)| tuple![a, b]).collect();
    let rel = Relation::from_tuples(2, tuples.iter().cloned()).unwrap();
    (rel, tuples)
}

/// The byte-identity check: the run iterates exactly the model's tuples in
/// the model's (lexicographic) order, and row-level accessors agree.
fn assert_identical(rel: &Relation, model: &BTreeSet<Tuple>) {
    prop_assert_eq!(rel.len(), model.len());
    prop_assert_eq!(rel.is_empty(), model.is_empty());
    let mut flat: Vec<Const> = Vec::new();
    for (i, (row, t)) in rel.iter().zip(model.iter()).enumerate() {
        prop_assert_eq!(row, t.components());
        prop_assert_eq!(row, rel.row(i));
        prop_assert!(rel.contains_row(row));
        prop_assert!(rel.contains(t));
        flat.extend_from_slice(row);
    }
    // the raw run is the rows' concatenation, nothing more
    prop_assert_eq!(rel.as_rows(), flat.as_slice());
    // and the owned-tuple boundary iterator agrees with the model verbatim
    prop_assert_eq!(rel.tuples().collect::<BTreeSet<_>>(), model.clone());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sorted_run_tracks_a_btreeset_model(script in arb_script()) {
        let mut rel = Relation::empty(2);
        let mut model: BTreeSet<Tuple> = BTreeSet::new();
        let mut held: Vec<(Relation, BTreeSet<Tuple>)> = Vec::new();

        for op in script {
            match op {
                Op::Insert(a, b) => {
                    let added = rel.insert(tuple![a, b]).unwrap();
                    prop_assert_eq!(added, model.insert(tuple![a, b]));
                }
                Op::Remove(a, b) => {
                    let removed = rel.remove(&tuple![a, b]);
                    prop_assert_eq!(removed, model.remove(&tuple![a, b]));
                }
                Op::Union(rows) => {
                    let (other, other_model) = other_relation(&rows);
                    rel = rel.union(&other).unwrap();
                    model = model.union(&other_model).cloned().collect();
                }
                Op::Intersection(rows) => {
                    let (other, other_model) = other_relation(&rows);
                    rel = rel.intersection(&other).unwrap();
                    model = model.intersection(&other_model).cloned().collect();
                }
                Op::Difference(rows) => {
                    let (other, other_model) = other_relation(&rows);
                    rel = rel.difference(&other).unwrap();
                    model = model.difference(&other_model).cloned().collect();
                }
                Op::SymmetricDifference(rows) => {
                    let (other, other_model) = other_relation(&rows);
                    rel = rel.symmetric_difference(&other).unwrap();
                    model = model.symmetric_difference(&other_model).cloned().collect();
                }
                Op::Snapshot => {
                    held.push((rel.clone(), model.clone()));
                }
            }
            assert_identical(&rel, &model);
            // content equality is representation-independent: rebuilding
            // from the model's tuples yields an equal relation
            prop_assert_eq!(&rel, &Relation::from_tuples(2, model.iter().cloned()).unwrap());
        }

        // outstanding snapshots were frozen, not disturbed, by the
        // mutations that followed them (copy-on-write isolation)
        for (snap, expected) in held {
            assert_identical(&snap, &expected);
        }
    }

    #[test]
    fn zero_arity_flags_track_a_boolean_model(script in proptest::collection::vec((0u8..6, 0u8..2), 1..60)) {
        let mut rel = Relation::empty(0);
        let mut model = false;
        let mut held: Vec<(Relation, bool)> = Vec::new();

        for (op, flag) in script {
            let other = if flag == 1 {
                Relation::from_tuples(0, [Tuple::empty()]).unwrap()
            } else {
                Relation::empty(0)
            };
            let other_model = flag == 1;
            match op {
                0 => {
                    let added = rel.insert(Tuple::empty()).unwrap();
                    prop_assert_eq!(added, !model);
                    model = true;
                }
                1 => {
                    let removed = rel.remove(&Tuple::empty());
                    prop_assert_eq!(removed, model);
                    model = false;
                }
                2 => {
                    rel = rel.union(&other).unwrap();
                    model |= other_model;
                }
                3 => {
                    rel = rel.intersection(&other).unwrap();
                    model &= other_model;
                }
                4 => {
                    rel = rel.difference(&other).unwrap();
                    model &= !other_model;
                }
                _ => {
                    held.push((rel.clone(), model));
                }
            }
            prop_assert_eq!(rel.len(), usize::from(model));
            prop_assert_eq!(rel.contains(&Tuple::empty()), model);
            // zero-arity rows carry no data: the run stays empty and the
            // iterator yields `len()` empty slices
            prop_assert_eq!(rel.as_rows(), &[] as &[Const]);
            prop_assert_eq!(rel.iter().count(), usize::from(model));
            prop_assert!(rel.iter().all(|row| row.is_empty()));
        }

        for (snap, expected) in held {
            prop_assert_eq!(snap.len(), usize::from(expected));
            prop_assert_eq!(snap.contains(&Tuple::empty()), expected);
        }
    }
}
