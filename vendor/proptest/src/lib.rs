//! Offline stand-in for the `proptest` crate.
//!
//! The build environment of this repository has no network access, so the
//! real `proptest` crate cannot be fetched from crates.io.  This shim keeps
//! the property-based tests runnable: strategies are deterministic random
//! generators (seeded per test from the test name), the [`proptest!`] macro
//! loops over `ProptestConfig::cases` generated inputs, and failed
//! `prop_assert!` calls panic with the offending values' messages.  Unlike
//! the real proptest there is **no shrinking** — a failure reports the first
//! counterexample found, not a minimal one.

/// Strategy combinators and the [`Strategy`](strategy::Strategy) trait.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Produces one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with a function.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a function producing a second
        /// strategy, then samples that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform sampling from half-open integer ranges: `0u32..3` is a
    /// strategy.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// A strategy that always yields the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` for the primitive types the tests use.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produces one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `element`; up to `size.end - 1` insertion
    /// attempts are made, so duplicates may make the set smaller.
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The deterministic RNG and per-run configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// A deterministic splitmix64 generator, seeded per test.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from an arbitrary string (the test name), so
        /// every property sees a reproducible but distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
            for b in name.bytes() {
                state = state.rotate_left(7) ^ (b as u64).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The glob-imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a property inside a `proptest!` body, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Declares property tests: each function runs `cases` times over freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..200 {
            let x = (0u32..3).generate(&mut rng);
            assert!(x < 3);
            let (a, b) = (0u32..2, 1usize..4).generate(&mut rng);
            assert!(a < 2 && (1..4).contains(&b));
        }
    }

    #[test]
    fn collections_respect_size_ranges() {
        let mut rng = crate::test_runner::TestRng::from_name("coll");
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let s = crate::collection::btree_set(0u32..5, 0..3).generate(&mut rng);
            assert!(s.len() < 3);
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        let doubled = (0u32..10).prop_map(|x| x * 2);
        let nested = (1u32..4).prop_flat_map(|n| (0u32..n).prop_map(move |x| (n, x)));
        for _ in 0..100 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
            let (n, x) = nested.generate(&mut rng);
            assert!(x < n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, flag in any::<bool>()) {
            prop_assert!(x < 100, "x out of range: {x}");
            let doubled = if flag { x * 2 } else { x + 1 };
            prop_assert_eq!(doubled, if flag { x * 2 } else { x + 1 });
        }
    }
}
