//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access, so the
//! real `rand` crate cannot be fetched from crates.io.  This shim implements
//! exactly the subset of the `rand` 0.9 API surface the workspace uses —
//! [`Rng`], [`RngExt`], [`SeedableRng`], [`rngs::StdRng`], and the
//! [`prelude::IndexedRandom`] / [`prelude::IteratorRandom`] helpers — on top
//! of the xoshiro256** generator seeded through splitmix64.  All generators
//! are deterministic given their seed, which is what the workload generators
//! and benchmarks rely on.

/// A source of randomness: the core trait every generator implements.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range by [`RngExt`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`; panics if the range is empty.
    fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // multiply-shift uniform mapping; bias is negligible for the
                // small spans used by the workload generators.
                let x = ((rng() as u128 * span as u128) >> 64) as u64;
                (low as u128 + x as u128) as Self
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience sampling methods, mirroring `rand::Rng`'s extension surface.
pub trait RngExt: Rng {
    /// Samples uniformly from the half-open range `low..high`.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        let mut f = || self.next_u64();
        T::sample_range(&mut f, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits → uniform float in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            StdRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }
}

/// Slice and iterator sampling helpers.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngExt, SeedableRng};

    /// Random selection from slices.
    pub trait IndexedRandom<T> {
        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T>;
    }

    impl<T> IndexedRandom<T> for [T] {
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    /// Random sampling from iterators.
    pub trait IteratorRandom: Iterator + Sized {
        /// Reservoir-samples `amount` elements without replacement; returns
        /// fewer if the iterator is shorter than `amount`.
        fn sample<R: Rng + ?Sized>(self, rng: &mut R, amount: usize) -> Vec<Self::Item> {
            let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
            for (i, item) in self.enumerate() {
                if reservoir.len() < amount {
                    reservoir.push(item);
                } else {
                    let j = rng.random_range(0..i + 1);
                    if j < amount {
                        reservoir[j] = item;
                    }
                }
            }
            reservoir
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

pub use prelude::{IndexedRandom, IteratorRandom};

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..1);
            assert_eq!(y, 0);
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn choose_and_sample() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(xs.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let sampled = (1..=100u32).sample(&mut rng, 10);
        assert_eq!(sampled.len(), 10);
        let mut unique = sampled.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 10, "sampling without replacement");

        let short = (1..=3u32).sample(&mut rng, 10);
        assert_eq!(short.len(), 3);
    }
}
