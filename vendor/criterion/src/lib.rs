//! Offline stand-in for the `criterion` crate.
//!
//! The build environment of this repository has no network access, so the
//! real `criterion` crate cannot be fetched from crates.io.  This shim keeps
//! the whole benchmark harness runnable: it exposes the subset of the
//! criterion 0.5 API the `kbt-bench` targets use ([`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`criterion_group!`] /
//! [`criterion_main!`]) and implements honest wall-clock measurement — a
//! warm-up phase followed by `sample_size` timed samples, reporting the mean,
//! minimum and maximum time per iteration.  There is no statistical analysis
//! or HTML report, but the numbers are real and the CLI filter argument
//! (`cargo bench -- <substring>`) works.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: holds the measurement configuration and the CLI
/// filter, and prints one line per benchmark.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (each sample may run the
    /// routine several times).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Duration of the warm-up phase before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total duration of the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Reads the benchmark filter from the command line (`cargo bench --
    /// <substring>`); flags passed by cargo (`--bench`, `--test`, …) are
    /// ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        if self.matches(&name) {
            run_one(&name, self, &mut routine);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Compatibility no-op (the real criterion prints a summary at exit).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion, &mut routine);
        }
        self
    }

    /// Runs one benchmark of the group with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion, &mut |b| routine(b, input));
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to every benchmark routine; [`Bencher::iter`] does the timing.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples for the report.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Choose the iteration count per sample so that the whole measurement
        // phase lands near `measurement_time`.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns
                .push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }
}

fn run_one(name: &str, config: &Criterion, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
        sample_size: config.sample_size,
        samples_ns: Vec::new(),
    };
    routine(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let mean = bencher.samples_ns.iter().sum::<f64>() / bencher.samples_ns.len() as f64;
    let min = bencher
        .samples_ns
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher
        .samples_ns
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{name:<60} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| ran += 1));
        assert!(ran > 0, "the routine must actually run");
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("tc", 10).to_string(), "tc/10");
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut hits = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::from_parameter(1), &41, |b, &x| {
                b.iter(|| x + 1)
            });
            g.bench_function("plain", |b| b.iter(|| hits += 1));
            g.finish();
        }
        assert!(hits > 0);
    }
}
