//! Offline stand-in for the `criterion` crate.
//!
//! The build environment of this repository has no network access, so the
//! real `criterion` crate cannot be fetched from crates.io.  This shim keeps
//! the whole benchmark harness runnable: it exposes the subset of the
//! criterion 0.5 API the `kbt-bench` targets use ([`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`criterion_group!`] /
//! [`criterion_main!`]) and implements honest wall-clock measurement — a
//! warm-up phase followed by `sample_size` timed samples, reporting the
//! minimum, median and maximum time per iteration.  There is no statistical
//! analysis or HTML report, but the numbers are real and the CLI filter
//! argument (`cargo bench -- <substring>`) works.
//!
//! ## Machine-readable output
//!
//! When the `KBT_BENCH_JSON` environment variable names a file, every
//! benchmark merges its record into that file as it finishes:
//!
//! ```json
//! {
//!   "group/name/param": { "median_ns": 1.0, "mean_ns": 1.1, "min_ns": 0.9, "max_ns": 1.3 }
//! }
//! ```
//!
//! Records are keyed by the full benchmark name and overwritten on re-runs,
//! so successive `cargo bench` invocations (even from different bench
//! binaries) accumulate into one file — CI uses this to track the
//! performance trajectory (`BENCH_parallel.json`).

use std::collections::BTreeMap;
use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver: holds the measurement configuration and the CLI
/// filter, and prints one line per benchmark.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (each sample may run the
    /// routine several times).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Duration of the warm-up phase before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total duration of the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Reads the benchmark filter from the command line (`cargo bench --
    /// <substring>`); flags passed by cargo (`--bench`, `--test`, …) are
    /// ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        if self.matches(&name) {
            run_one(&name, self, &mut routine);
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Compatibility no-op (the real criterion prints a summary at exit).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion, &mut routine);
        }
        self
    }

    /// Runs one benchmark of the group with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            run_one(&full, self.criterion, &mut |b| routine(b, input));
        }
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to every benchmark routine; [`Bencher::iter`] does the timing.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples for the report.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Choose the iteration count per sample so that the whole measurement
        // phase lands near `measurement_time`.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples_ns
                .push(elapsed * 1e9 / iters_per_sample as f64);
        }
    }
}

/// One benchmark's summary statistics, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BenchRecord {
    /// Median over the timed samples.
    pub median_ns: f64,
    /// Mean over the timed samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

/// Merges one externally produced record into the `KBT_BENCH_JSON` report
/// file (no-op when the variable is unset).  This lets harness code publish
/// non-timing series — e.g. allocation counts — next to the timing medians,
/// where the baseline-comparison tooling picks them up like any other
/// record.
pub fn record_external(name: &str, record: BenchRecord) {
    if let Ok(path) = std::env::var("KBT_BENCH_JSON") {
        if !path.is_empty() {
            merge_json_record(std::path::Path::new(&path), name, record);
        }
    }
}

fn run_one(name: &str, config: &Criterion, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
        sample_size: config.sample_size,
        samples_ns: Vec::new(),
    };
    routine(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let mut sorted = bencher.samples_ns.clone();
    sorted.sort_by(f64::total_cmp);
    let record = BenchRecord {
        median_ns: sorted[sorted.len() / 2],
        mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
        min_ns: sorted[0],
        max_ns: sorted[sorted.len() - 1],
    };
    println!(
        "{name:<60} time: [{} {} {}]",
        format_ns(record.min_ns),
        format_ns(record.median_ns),
        format_ns(record.max_ns)
    );
    if let Ok(path) = std::env::var("KBT_BENCH_JSON") {
        if !path.is_empty() {
            merge_json_record(std::path::Path::new(&path), name, record);
        }
    }
}

/// Merges one record into the JSON report file (best effort: I/O errors are
/// reported to stderr, never fail the benchmark run).
fn merge_json_record(path: &std::path::Path, name: &str, record: BenchRecord) {
    let mut records = std::fs::read_to_string(path)
        .map(|text| parse_bench_json(&text))
        .unwrap_or_default();
    records.insert(name.to_string(), record);
    let mut out = String::from("{\n");
    for (i, (name, r)) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  \"{name}\": {{ \"median_ns\": {}, \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {} }}",
            r.median_ns, r.mean_ns, r.min_ns, r.max_ns
        ));
    }
    out.push_str("\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("KBT_BENCH_JSON: cannot write {}: {e}", path.display());
    }
}

/// Parses the flat two-level JSON this shim writes (one record per line);
/// anything unrecognised is skipped.
fn parse_bench_json(text: &str) -> BTreeMap<String, BenchRecord> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, fields)) = rest.split_once("\": {") else {
            continue;
        };
        let mut record = BenchRecord::default();
        for field in fields.trim_end_matches([' ', '}']).split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            let Ok(value) = value.trim().parse::<f64>() else {
                continue;
            };
            match key.trim().trim_matches('"') {
                "median_ns" => record.median_ns = value,
                "mean_ns" => record.mean_ns = value,
                "min_ns" => record.min_ns = value,
                "max_ns" => record.max_ns = value,
                _ => {}
            }
        }
        out.insert(name.to_string(), record);
    }
    out
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| ran += 1));
        assert!(ran > 0, "the routine must actually run");
    }

    #[test]
    fn json_records_round_trip_and_merge() {
        let dir = std::env::temp_dir().join(format!("kbt-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let _ = std::fs::remove_file(&path);
        let a = BenchRecord {
            median_ns: 1.5,
            mean_ns: 2.25,
            min_ns: 1.0,
            max_ns: 4.0,
        };
        merge_json_record(&path, "g/one", a);
        merge_json_record(
            &path,
            "g/two",
            BenchRecord {
                median_ns: 10.0,
                ..a
            },
        );
        // re-recording overwrites in place
        merge_json_record(
            &path,
            "g/one",
            BenchRecord {
                median_ns: 9.0,
                ..a
            },
        );
        let parsed = parse_bench_json(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["g/one"].median_ns, 9.0);
        assert_eq!(parsed["g/one"].max_ns, 4.0);
        assert_eq!(parsed["g/two"].median_ns, 10.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("tc", 10).to_string(), "tc/10");
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut hits = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_with_input(BenchmarkId::from_parameter(1), &41, |b, &x| {
                b.iter(|| x + 1)
            });
            g.bench_function("plain", |b| b.iter(|| hits += 1));
            g.finish();
        }
        assert!(hits > 0);
    }
}
