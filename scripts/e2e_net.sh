#!/usr/bin/env bash
# e2e_net.sh — end-to-end exercise of the network front, CI's e2e-net job.
#
# Starts kbt-serve on loopback, waits for its readiness line (NOT a TCP
# probe: a probe connection would inflate the session counters and make
# the STATS golden nondeterministic), drives a scripted session through
# kbt-shell --connect, shuts the server down with SIGTERM (exercising the
# graceful signal path — a non-zero exit here fails the job), and diffs
# the client transcript against the committed golden file.
#
# Usage: scripts/e2e_net.sh [target-dir]   (default: target)

set -euo pipefail
cd "$(dirname "$0")/.."

TARGET=${1:-target}
BIN="$TARGET/release"
PORT=${KBT_E2E_PORT:-7341}
WORK=$(mktemp -d)
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

for bin in kbt-serve kbt-shell; do
    [ -x "$BIN/$bin" ] || { echo "missing $BIN/$bin (cargo build --release first)" >&2; exit 1; }
done

# --threads 2 pins the width the STATS line reports, keeping the
# transcript machine-independent
"$BIN/kbt-serve" --addr "127.0.0.1:$PORT" --threads 2 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/serve.log" 2>/dev/null && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "kbt-serve died:" >&2; cat "$WORK/serve.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "listening on" "$WORK/serve.log" || { echo "kbt-serve never became ready" >&2; cat "$WORK/serve.log" >&2; exit 1; }

"$BIN/kbt-shell" --connect "127.0.0.1:$PORT" examples/net_client_session.kbt >"$WORK/transcript.txt"

# graceful shutdown on signal: SIGTERM must yield exit code 0
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "--- kbt-serve log ---"
cat "$WORK/serve.log"

diff -u tests/golden/net_session.golden "$WORK/transcript.txt" || {
    echo "transcript differs from tests/golden/net_session.golden" >&2
    exit 1
}
echo "e2e-net: transcript matches the golden file"
