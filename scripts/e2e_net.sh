#!/usr/bin/env bash
# e2e_net.sh — end-to-end exercise of the network front, CI's e2e-net job.
#
# Starts kbt-serve on loopback, waits for its readiness line (NOT a TCP
# probe: a probe connection would inflate the session counters and make
# the STATS golden nondeterministic), drives a scripted session through
# kbt-shell --connect, shuts the server down with SIGTERM (exercising the
# graceful signal path — a non-zero exit here fails the job), and diffs
# the client transcript against the committed golden file.
#
# Usage: scripts/e2e_net.sh [target-dir]   (default: target)

set -euo pipefail
cd "$(dirname "$0")/.."

TARGET=${1:-target}
BIN="$TARGET/release"
PORT=${KBT_E2E_PORT:-7341}
WORK=$(mktemp -d)
SERVE_PID=""
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

for bin in kbt-serve kbt-shell; do
    [ -x "$BIN/$bin" ] || { echo "missing $BIN/$bin (cargo build --release first)" >&2; exit 1; }
done

# --threads 2 pins the width the STATS line reports, keeping the
# transcript machine-independent; --log-format json exercises the
# structured log sink end to end (the transcript on stdout is unaffected
# — the sink writes to stderr, i.e. serve.log)
"$BIN/kbt-serve" --addr "127.0.0.1:$PORT" --threads 2 --log-format json >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/serve.log" 2>/dev/null && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "kbt-serve died:" >&2; cat "$WORK/serve.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "listening on" "$WORK/serve.log" || { echo "kbt-serve never became ready" >&2; cat "$WORK/serve.log" >&2; exit 1; }

"$BIN/kbt-shell" --connect "127.0.0.1:$PORT" examples/net_client_session.kbt >"$WORK/transcript.txt"

# METRICS scrape over the live socket.  The exposition is load-dependent
# (latency histograms, session counters), so it is asserted structurally
# rather than diffed: the scrape must parse as `= `-framed data plus an
# OK status, and every metric name documented in the service crate's
# Observability catalogue must actually appear — a doc-drift gate in
# both directions (renamed metric fails here; undocumented ones are the
# code reviewer's job).  Runs after the transcript capture so the extra
# session never perturbs the STATS golden, and before SIGTERM because it
# needs the live server.
echo "METRICS" >"$WORK/metrics.kbt"
"$BIN/kbt-shell" --connect "127.0.0.1:$PORT" "$WORK/metrics.kbt" >"$WORK/metrics.txt"
grep -q '^OK epoch=' "$WORK/metrics.txt" || {
    echo "METRICS did not return an OK status:" >&2; cat "$WORK/metrics.txt" >&2; exit 1
}
CATALOGUE=$(sed -n 's/^\/\/! \* `\(kbt_[a-z_]*\)`.*/\1/p' crates/service/src/lib.rs)
[ -n "$CATALOGUE" ] || { echo "no metric catalogue found in crates/service/src/lib.rs" >&2; exit 1; }
MISSING=0
for name in $CATALOGUE; do
    grep -q "^= .*$name" "$WORK/metrics.txt" || { echo "documented metric missing from scrape: $name" >&2; MISSING=1; }
done
[ "$MISSING" -eq 0 ] || { echo "--- scrape ---" >&2; cat "$WORK/metrics.txt" >&2; exit 1; }
echo "e2e-net: METRICS scrape covers all $(echo "$CATALOGUE" | wc -l) documented metrics"

# graceful shutdown on signal: SIGTERM must yield exit code 0
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "--- kbt-serve log ---"
cat "$WORK/serve.log"

# the JSON log sink must have recorded the session lifecycle
grep -q '"event":"session_open"' "$WORK/serve.log" || {
    echo "no session_open event in the JSON log" >&2; exit 1
}
grep -q '"event":"session_close"' "$WORK/serve.log" || {
    echo "no session_close event in the JSON log" >&2; exit 1
}

diff -u tests/golden/net_session.golden "$WORK/transcript.txt" || {
    echo "transcript differs from tests/golden/net_session.golden" >&2
    exit 1
}
echo "e2e-net: transcript matches the golden file"
