#!/usr/bin/env bash
# e2e_net.sh — end-to-end exercise of the network front, CI's e2e-net job.
#
# Starts kbt-serve on loopback, waits for its readiness line (NOT a TCP
# probe: a probe connection would inflate the session counters and make
# the STATS golden nondeterministic), drives a scripted session through
# kbt-shell --connect, shuts the server down with SIGTERM (exercising the
# graceful signal path — a non-zero exit here fails the job), and diffs
# the client transcript against the committed golden file.
#
# Usage: scripts/e2e_net.sh [target-dir]   (default: target)

set -euo pipefail
cd "$(dirname "$0")/.."

TARGET=${1:-target}
BIN="$TARGET/release"
PORT=${KBT_E2E_PORT:-7341}
WORK=$(mktemp -d)
SERVE_PID=""
DURABLE_PID=""
trap 'kill "$SERVE_PID" "$DURABLE_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

for bin in kbt-serve kbt-shell; do
    [ -x "$BIN/$bin" ] || { echo "missing $BIN/$bin (cargo build --release first)" >&2; exit 1; }
done

# --threads 2 pins the width the STATS line reports, keeping the
# transcript machine-independent; --log-format json exercises the
# structured log sink end to end (the transcript on stdout is unaffected
# — the sink writes to stderr, i.e. serve.log)
"$BIN/kbt-serve" --addr "127.0.0.1:$PORT" --threads 2 --log-format json >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/serve.log" 2>/dev/null && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "kbt-serve died:" >&2; cat "$WORK/serve.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "listening on" "$WORK/serve.log" || { echo "kbt-serve never became ready" >&2; cat "$WORK/serve.log" >&2; exit 1; }

"$BIN/kbt-shell" --connect "127.0.0.1:$PORT" examples/net_client_session.kbt >"$WORK/transcript.txt"

# METRICS scrape over the live socket.  The exposition is load-dependent
# (latency histograms, session counters), so it is asserted structurally
# rather than diffed: the scrape must parse as `= `-framed data plus an
# OK status, and every metric name documented in the service crate's
# Observability catalogue must actually appear — a doc-drift gate in
# both directions (renamed metric fails here; undocumented ones are the
# code reviewer's job).  Runs after the transcript capture so the extra
# session never perturbs the STATS golden, and before SIGTERM because it
# needs the live server.
echo "METRICS" >"$WORK/metrics.kbt"
"$BIN/kbt-shell" --connect "127.0.0.1:$PORT" "$WORK/metrics.kbt" >"$WORK/metrics.txt"
grep -q '^OK id=t1 epoch=' "$WORK/metrics.txt" || {
    echo "METRICS did not return an OK status:" >&2; cat "$WORK/metrics.txt" >&2; exit 1
}
CATALOGUE=$(sed -n 's/^\/\/! \* `\(kbt_[a-z_]*\)`.*/\1/p' crates/service/src/lib.rs)
[ -n "$CATALOGUE" ] || { echo "no metric catalogue found in crates/service/src/lib.rs" >&2; exit 1; }
MISSING=0
for name in $CATALOGUE; do
    grep -q "^= .*$name" "$WORK/metrics.txt" || { echo "documented metric missing from scrape: $name" >&2; MISSING=1; }
    # every catalogued family must carry a # HELP description in the exposition
    grep -q "^= # HELP $name " "$WORK/metrics.txt" || { echo "documented metric has no # HELP line: $name" >&2; MISSING=1; }
done
[ "$MISSING" -eq 0 ] || { echo "--- scrape ---" >&2; cat "$WORK/metrics.txt" >&2; exit 1; }
echo "e2e-net: METRICS scrape covers all $(echo "$CATALOGUE" | wc -l) documented metrics (with # HELP)"

# PROFILE over the live socket: per-rule rows carry an elapsed_ns field, so
# the response is asserted structurally instead of goldened.
echo "PROFILE project[flight]; tau[(forall x0 x1. flight(x0, x1) -> reach(x0, x1)) & (forall x0 x1 x2. reach(x0, x1) & flight(x1, x2) -> reach(x0, x2))]; lub" >"$WORK/profile.kbt"
"$BIN/kbt-shell" --connect "127.0.0.1:$PORT" "$WORK/profile.kbt" >"$WORK/profile.txt"
grep -q '^= .*elapsed_ns=' "$WORK/profile.txt" || {
    echo "PROFILE returned no per-rule rows:" >&2; cat "$WORK/profile.txt" >&2; exit 1
}
grep -Eq '^OK id=t1 epoch=[0-9]+ worlds=[0-9]+ rows=[0-9]+$' "$WORK/profile.txt" || {
    echo "PROFILE status line malformed:" >&2; cat "$WORK/profile.txt" >&2; exit 1
}
echo "e2e-net: PROFILE returns per-rule rows over the wire"

# goal-directed bound queries: the first bound goal must go through the
# magic rewrite (strategy=magic on its status line), the identical repeat
# on the same snapshot must be answered from the subsumptive table
# (strategy=tabled), and the table hit must be visible in a METRICS
# scrape — the observable half of the tabling contract (eviction on
# commit is pinned by the service's unit tests).
cat >"$WORK/bound.kbt" <<'EOF'
ASSERT edge(1, 2), edge(2, 3)
DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]
QUERY CERTAIN path(1, x)
QUERY CERTAIN path(1, x)
METRICS
EOF
"$BIN/kbt-shell" --connect "127.0.0.1:$PORT" "$WORK/bound.kbt" >"$WORK/bound.txt"
grep -q 'strategy=magic' "$WORK/bound.txt" || {
    echo "first bound query did not report strategy=magic:" >&2; cat "$WORK/bound.txt" >&2; exit 1
}
grep -q 'strategy=tabled' "$WORK/bound.txt" || {
    echo "repeated bound query did not report strategy=tabled:" >&2; cat "$WORK/bound.txt" >&2; exit 1
}
grep -Eq '^= kbt_engine_table_hits [1-9]' "$WORK/bound.txt" || {
    echo "subsumptive-table hit counter not visible in METRICS:" >&2; cat "$WORK/bound.txt" >&2; exit 1
}
grep -Eq '^= kbt_service_queries_magic_total [1-9]' "$WORK/bound.txt" || {
    echo "per-strategy magic counter not visible in METRICS:" >&2; cat "$WORK/bound.txt" >&2; exit 1
}
echo "e2e-net: bound queries report their strategy and hit the subsumptive table"

# client-supplied trace IDs: a '#id=<token> ' prefix must round-trip into
# the status line and into the JSON log's per-command event record.  The
# shell skips comment lines client-side, so this goes over a raw socket.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '#id=ci-e2e-42 STATS\n' >&3
TRACED=""
while IFS= read -r line <&3; do
    case "$line" in OK*|ERR*) TRACED="$line"; break ;; esac
done
exec 3<&- 3>&-
# OK lines lead with the trace ID (fixed key order); ERR lines trail it
case "$TRACED" in
    "OK id=ci-e2e-42"*|*" id=ci-e2e-42") echo "e2e-net: client trace ID echoes on the status line" ;;
    *) echo "client trace ID did not round-trip (got: $TRACED)" >&2; exit 1 ;;
esac

# kill-and-recover: a durable server is SIGKILLed mid-session — no
# graceful path, no checkpoint-on-exit — and a restart on the same
# --data-dir must recover the committed epoch and serve the same answers.
DPORT=$((PORT + 1))
DDIR="$WORK/data"
"$BIN/kbt-serve" --addr "127.0.0.1:$DPORT" --threads 2 \
    --data-dir "$DDIR" --fsync always --checkpoint-every 3 >"$WORK/durable.log" 2>&1 &
DURABLE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/durable.log" 2>/dev/null && break
    kill -0 "$DURABLE_PID" 2>/dev/null || { echo "durable kbt-serve died:" >&2; cat "$WORK/durable.log" >&2; exit 1; }
    sleep 0.1
done
cat >"$WORK/durable.kbt" <<'EOF'
ASSERT edge(1, 2), edge(2, 3)
DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]
APPLY tc
ASSERT edge(3, 4)
APPLY tc
CHECKPOINT
WALSTAT
QUERY CERTAIN path
EOF
"$BIN/kbt-shell" --connect "127.0.0.1:$DPORT" "$WORK/durable.kbt" >"$WORK/durable1.txt"
grep -q 'durable=true' "$WORK/durable1.txt" || {
    echo "fsync-always commits did not report durable=true:" >&2; cat "$WORK/durable1.txt" >&2; exit 1
}
grep -Eq '^OK id=t[0-9]+ epoch=5 file=checkpoint-' "$WORK/durable1.txt" || {
    echo "CHECKPOINT did not report its file:" >&2; cat "$WORK/durable1.txt" >&2; exit 1
}
grep -Eq '^OK id=t[0-9]+ epoch=5 policy=always records=5 ' "$WORK/durable1.txt" || {
    echo "WALSTAT status malformed:" >&2; cat "$WORK/durable1.txt" >&2; exit 1
}
kill -KILL "$DURABLE_PID"
wait "$DURABLE_PID" 2>/dev/null || true
"$BIN/kbt-serve" --addr "127.0.0.1:$DPORT" --threads 2 \
    --data-dir "$DDIR" --fsync always --checkpoint-every 3 >"$WORK/durable2.log" 2>&1 &
DURABLE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$WORK/durable2.log" 2>/dev/null && break
    kill -0 "$DURABLE_PID" 2>/dev/null || { echo "restarted kbt-serve died:" >&2; cat "$WORK/durable2.log" >&2; exit 1; }
    sleep 0.1
done
grep -q "recovered epoch e5 from" "$WORK/durable2.log" || {
    echo "restart did not recover epoch 5:" >&2; cat "$WORK/durable2.log" >&2; exit 1
}
printf 'QUERY CERTAIN path\n' >"$WORK/durable-check.kbt"
"$BIN/kbt-shell" --connect "127.0.0.1:$DPORT" "$WORK/durable-check.kbt" >"$WORK/durable2.txt"
# the recovered answers must be byte-identical to the pre-kill query
# (data lines + epoch/count status; only the trace sequence differs)
tail -n +"$(($(wc -l <"$WORK/durable1.txt") - $(wc -l <"$WORK/durable2.txt") + 1))" "$WORK/durable1.txt" \
    | sed 's/ id=t[0-9]*//' >"$WORK/expect-path.txt"
sed 's/ id=t[0-9]*//' "$WORK/durable2.txt" >"$WORK/got-path.txt"
diff -u "$WORK/expect-path.txt" "$WORK/got-path.txt" || {
    echo "recovered QUERY CERTAIN path differs from the pre-kill answer" >&2; exit 1
}
kill -TERM "$DURABLE_PID"
wait "$DURABLE_PID"
echo "e2e-net: SIGKILL + restart recovers the committed epoch and answers"

# graceful shutdown on signal: SIGTERM must yield exit code 0
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
echo "--- kbt-serve log ---"
cat "$WORK/serve.log"

# the JSON log sink must have recorded the session lifecycle
grep -q '"event":"session_open"' "$WORK/serve.log" || {
    echo "no session_open event in the JSON log" >&2; exit 1
}
grep -q '"event":"session_close"' "$WORK/serve.log" || {
    echo "no session_close event in the JSON log" >&2; exit 1
}

# … and correlated the client-supplied trace ID with its command record
grep -q '"event":"command"' "$WORK/serve.log" || {
    echo "no per-command event records in the JSON log" >&2; exit 1
}
grep '"event":"command"' "$WORK/serve.log" | grep -q '"id":"ci-e2e-42"' || {
    echo "client trace ID missing from the JSON log command records" >&2; exit 1
}

diff -u tests/golden/net_session.golden "$WORK/transcript.txt" || {
    echo "transcript differs from tests/golden/net_session.golden" >&2
    exit 1
}
echo "e2e-net: transcript matches the golden file"
