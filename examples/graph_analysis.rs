//! Examples 2 and 3: transitive reductions of a dependency graph, and the
//! edges that appear in every reduction.
//!
//! A realistic reading: the graph is a set of observed "must run before"
//! constraints between build steps; the transitive reductions are the minimal
//! schedules that preserve all orderings, and the edges common to every
//! reduction are the truly indispensable direct dependencies.
//!
//! Run with `cargo run --example graph_analysis`.

use kbt::core::examples::transitive_reduction;
use kbt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // build steps: 1 = parse, 2 = typecheck, 3 = codegen; (1,3) is a
    // redundant observed constraint implied by the other two.
    let constraints: Vec<(u32, u32)> = vec![(1, 2), (2, 3), (1, 3)];
    let transformer = Transformer::new();

    println!("observed constraints: {constraints:?}");
    let reductions = transitive_reduction::transitive_reductions(&transformer, &constraints)?;
    println!(
        "\ntransitive reductions (Example 2): {} found",
        reductions.len()
    );
    for (i, r) in reductions.iter().enumerate() {
        println!("  reduction {}: {r}", i + 1);
    }

    // Example 3: is a given set of edges contained in every reduction?
    for query in [vec![(1u32, 2u32)], vec![(1, 3)], vec![(1, 2), (2, 3)]] {
        let essential =
            transitive_reduction::edges_in_every_reduction(&transformer, &constraints, &query)?;
        println!(
            "edges {query:?} are {} every transitive reduction",
            if essential { "in" } else { "NOT in" }
        );
    }

    // cross-check with the brute-force baseline
    let baseline = transitive_reduction::baseline_transitive_reductions(&constraints);
    assert_eq!(baseline.len(), reductions.len());
    println!(
        "\nbrute-force baseline agrees: {} reduction(s)",
        baseline.len()
    );
    Ok(())
}
