//! Theorem 4.2 in action: deciding 3CNF satisfiability by evaluating a
//! transformation expression, cross-checked against a DPLL solver.
//!
//! This is the executable form of the paper's co-NP-hardness argument: the
//! knowledgebase stores the clauses, the inserted sentence makes the possible
//! worlds range over the truth assignments, and the answer is read off a
//! zero-ary flag relation.
//!
//! Run with `cargo run --example sat_via_updates`.

use kbt::prelude::*;
use kbt::reductions::threecnf::{
    satisfiable_via_dpll, satisfiable_via_transformation, Clause3, ThreeCnf,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let transformer = Transformer::new();

    // A satisfiable instance: (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ ¬x2 ∨ x3) ∧ (¬x3 ∨ x1 ∨ x2)
    let satisfiable = ThreeCnf {
        num_vars: 3,
        clauses: vec![
            Clause3 {
                literals: [(1, true), (2, true), (3, true)],
            },
            Clause3 {
                literals: [(1, false), (2, false), (3, true)],
            },
            Clause3 {
                literals: [(3, false), (1, true), (2, true)],
            },
        ],
    };

    // An unsatisfiable instance: every sign pattern over {x1, x2, x3}.
    let mut clauses = Vec::new();
    for bits in 0..8u32 {
        clauses.push(Clause3 {
            literals: [(1, bits & 1 != 0), (2, bits & 2 != 0), (3, bits & 4 != 0)],
        });
    }
    let unsatisfiable = ThreeCnf {
        num_vars: 3,
        clauses,
    };

    for (name, instance) in [
        ("satisfiable", satisfiable),
        ("unsatisfiable", unsatisfiable),
    ] {
        let via_transform = satisfiable_via_transformation(&transformer, &instance)?;
        let via_dpll = satisfiable_via_dpll(&instance);
        println!(
            "{name} instance ({} clauses): transformation says {}, DPLL says {}",
            instance.clauses.len(),
            via_transform,
            via_dpll
        );
        assert_eq!(via_transform, via_dpll);
    }
    println!("\nboth deciders agree — Theorem 4.2's reduction is faithful");
    Ok(())
}
