//! Concurrent MVCC serving in ~60 lines: one writer keeps committing a
//! growing flight network and re-applying the registered reachability
//! refresh, while reader threads take `O(1)` snapshots and answer
//! certain-reachability queries against them — without ever blocking the
//! writer or seeing a torn epoch.
//!
//! ```text
//! cargo run --release --example service_session
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kbt::service::{Response, Service, ServiceConfig};

fn main() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    println!(
        "service up: width {} thread(s), epoch {}",
        service.config().threads,
        service.epoch()
    );

    service
        .execute(
            "DEFINE refresh := project[edge]; \
             tau[(forall x0 x1. edge(x0, x1) -> reach(x0, x1)) & \
                 (forall x0 x1 x2. reach(x0, x1) & edge(x1, x2) -> reach(x0, x2))]",
        )
        .unwrap();

    let done = Arc::new(AtomicBool::new(false));

    // Readers: hammer snapshots while the writer below keeps committing.
    let readers: Vec<_> = (0..3)
        .map(|id| {
            let service = service.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let certain_reach = |snap: &kbt::service::Snapshot| {
                    snap.vocab()
                        .lookup_relation("reach")
                        .map(|(rel, _)| service.certain(snap, rel).len())
                        .unwrap_or(0)
                };
                let mut served = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    let _ = certain_reach(&snap);
                    served += 1;
                }
                let snap = service.snapshot();
                let reach = certain_reach(&snap);
                println!(
                    "reader {id}: {served} queries, last saw {reach} reach fact(s) at {}",
                    snap.epoch()
                );
            })
        })
        .collect();

    // Writer: grow a chain graph, refreshing the closure incrementally.
    for i in 0..40u32 {
        service
            .execute(&format!("ASSERT edge({i}, {})", i + 1))
            .unwrap();
        match service.execute("APPLY refresh").unwrap() {
            Response::Applied {
                epoch,
                facts,
                reused_facts,
                ..
            } if i % 10 == 9 => {
                println!(
                    "writer: {epoch} holds {facts} fact(s), {reused_facts} reused by the chain"
                )
            }
            _ => {}
        }
    }

    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    println!(
        "{}",
        service.execute("STATS").map(|r| r.to_string()).unwrap()
    );
}
