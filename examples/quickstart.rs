//! Quickstart: the "robot vehicles orbiting Venus" knowledgebase.
//!
//! Reproduces Example 1.1 and Example 4 of *Knowledgebase Transformations*:
//! a disjunctive knowledgebase, a Katsuno–Mendelzon update, and a
//! hypothetical (counterfactual) query — all through the public API.
//!
//! Run with `cargo run --example quickstart`.

use kbt::core::examples::robots;
use kbt::core::hypothetical::{counterfactual, HypotheticalAnswer};
use kbt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The knowledgebase after the garbled "I have landed" message:
    // either V has landed or W has.
    let kb = robots::initial_knowledgebase();
    println!("initial knowledgebase ({} possible worlds):", kb.len());
    for world in kb.iter() {
        println!("  {world}");
    }

    // Update: V reports that it has landed.  Under the KM update semantics
    // this tells us nothing about W.
    let transformer = Transformer::new();
    let updated = transformer.insert(&robots::v_landed(), &kb)?.kb;
    println!(
        "\nafter inserting \"V has landed\" ({} worlds):",
        updated.len()
    );
    for world in updated.iter() {
        println!("  {world}");
    }
    println!(
        "V certainly landed: {}",
        updated.certainly_holds(robots::LANDED, &kbt::data::tuple![1])
    );
    println!(
        "W certainly landed: {}",
        updated.certainly_holds(robots::LANDED, &kbt::data::tuple![2])
    );

    // The hypothetical query of Example 4: "if V had landed, would W be
    // necessarily still orbiting?"  The paper's answer is no.
    let w_orbiting = Sentence::new(kbt::logic::builder::not(kbt::logic::builder::atom(
        robots::LANDED.index(),
        [kbt::logic::builder::cst(robots::W.index())],
    )))?;
    let answer = counterfactual(&transformer, &robots::v_landed(), &w_orbiting, &kb)?;
    println!(
        "\n\"if V had landed, would W necessarily still be orbiting?\" → {}",
        match answer {
            HypotheticalAnswer::Necessarily => "yes",
            HypotheticalAnswer::Possibly => "not necessarily (it is merely possible)",
            HypotheticalAnswer::Never => "certainly not",
        }
    );
    Ok(())
}
