//! Example 1.2 / Example 1: reachability over a flight network.
//!
//! "Which cities are reachable directly or indirectly from Toronto via
//! Air Canada?"  The query is expressed by inserting the transitive-closure
//! sentence into the knowledgebase and projecting the freshly defined
//! relation — no recursion operator needed, the minimal-change semantics of
//! the insertion does the fixpoint computation.
//!
//! Run with `cargo run --example flight_reachability`.

use kbt::core::examples::{rels, transitive_closure};
use kbt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Name the cities through a vocabulary so the output is readable.
    let mut vocab = Vocabulary::new();
    let cities = ["Toronto", "Ottawa", "Montreal", "Halifax", "Winnipeg"];
    let ids: Vec<Const> = cities.iter().map(|c| vocab.constant(c)).collect();

    // Direct flights (a chain plus one isolated city).
    let direct: Vec<(u32, u32)> = vec![
        (ids[0].index(), ids[1].index()),
        (ids[1].index(), ids[2].index()),
        (ids[2].index(), ids[3].index()),
    ];

    println!("direct flights:");
    for &(a, b) in &direct {
        println!(
            "  {} → {}",
            vocab.render_constant(Const::new(a)),
            vocab.render_constant(Const::new(b))
        );
    }

    // Example 1: π_2 τ_φ([(r)]) is the transitive closure of the flight
    // relation.  Two formulations are provided; both give the same answer.
    let transformer = Transformer::new();
    let closure = transitive_closure::transitive_closure(&transformer, &direct)?;
    let closure_horn = transitive_closure::transitive_closure_horn(&transformer, &direct)?;
    assert_eq!(closure, closure_horn);

    let toronto = ids[0];
    println!("\nreachable from {}:", vocab.render_constant(toronto));
    for row in closure.iter() {
        if row.first() == Some(&toronto) {
            println!("  {}", vocab.render_constant(row[1]));
        }
    }

    // The deletion of Example 1.2 ("delete flight AC902") is just the
    // insertion of a negated fact.
    let delete = Sentence::new(kbt::logic::builder::not(kbt::logic::builder::atom(
        rels::R1.index(),
        [
            kbt::logic::builder::cst(ids[1].index()),
            kbt::logic::builder::cst(ids[2].index()),
        ],
    )))?;
    let kb = Knowledgebase::singleton(kbt::core::examples::graph_database(rels::R1, &direct));
    let after = transformer.insert(&delete, &kb)?.kb;
    println!(
        "\nafter deleting the {} → {} flight the network has {} direct flights",
        vocab.render_constant(ids[1]),
        vocab.render_constant(ids[2]),
        after
            .as_singleton()
            .unwrap()
            .relation(rels::R1)
            .unwrap()
            .len()
    );
    Ok(())
}
