//! Examples 5, 6 and 7: NP-hard and counting queries expressed as
//! transformations.
//!
//! Demonstrates the expressive power the paper advertises: parity (not
//! first-order expressible), the monochromatic-triangle partition problem and
//! the maximum-clique problem, all phrased as insertions of first-order
//! sentences plus the lattice/projection operators.
//!
//! Run with `cargo run --example np_queries` (release mode recommended; the
//! general-purpose evaluator enumerates possible worlds).

use kbt::core::examples::{max_clique, monochromatic_triangle, parity};
use kbt::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let transformer = Transformer::new();

    // Example 6: parity of a unary relation.
    for set in [vec![1u32, 2], vec![1, 2, 3]] {
        let even = parity::is_even(&transformer, &set)?;
        println!(
            "Example 6 — |{set:?}| is {}",
            if even { "even" } else { "odd" }
        );
    }

    // Example 5: can the edges be split into two triangle-free graphs?
    let triangle = vec![(1u32, 2u32), (2, 3), (1, 3)];
    let partitionable =
        monochromatic_triangle::has_monochromatic_triangle_free_partition(&transformer, &triangle)?;
    println!(
        "Example 5 — the triangle graph {} a triangle-free 2-partition",
        if partitionable {
            "has"
        } else {
            "does not have"
        }
    );

    // Example 7: maximum clique of a small graph.
    let graph = vec![(1u32, 2u32), (2, 3), (1, 3), (3, 4)];
    let k = max_clique::baseline_max_clique(&graph);
    let confirmed = max_clique::maximum_clique_is(&transformer, &graph, k)?;
    println!(
        "Example 7 — maximum clique of {graph:?} is {k} (confirmed by the transformation: {confirmed})"
    );
    Ok(())
}
