//! Differential tests for parallel evaluation: every thread width must be
//! *observationally identical* to the sequential path.
//!
//! Three layers:
//!
//! 1. **Vendored-proptest property**: randomized stratified programs (with
//!    negation) over randomized extensional databases, followed by random
//!    insert/delete delta batches, evaluated at `threads = 1` and
//!    `threads = 4` — one-shot fixpoints must be byte-identical with equal
//!    derived-fact counts (all statistics, in fact), and incremental
//!    sessions must stay byte-identical to each other *and* to the
//!    from-scratch oracle after every batch.
//! 2. **Above-threshold workload**: a braid graph large enough that the
//!    parallel rounds genuinely fan out (the random instances above are
//!    often below the engine's fan-out cutoff, which must itself be
//!    unobservable).
//! 3. **Transformation level**: a 20-step incremental `τ_φ` chain through
//!    `EvalOptions::threads`, widths 1 vs 4, byte-identical knowledgebases
//!    and statistics.

use kbt::core::{EvalOptions, Transform, Transformer};
use kbt::data::{Database, DatabaseBuilder, Knowledgebase, RelId, Tuple};
use kbt::datalog::{semi_naive_eval_threads, DlAtom, IncrementalEval, Literal, Program, Rule};
use kbt::logic::builder::*;
use kbt::logic::Sentence;
use proptest::prelude::*;
use rand::prelude::*;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// Relations: R1 binary EDB, R2 unary EDB; R11 binary IDB, R12 unary IDB
/// (stratum 0); R21 unary IDB (stratum 1, may negate stratum 0).
const EDB_BIN: u32 = 1;
const EDB_UN: u32 = 2;
const IDB_BIN: u32 = 11;
const IDB_UN: u32 = 12;
const TOP_UN: u32 = 21;

fn arity_of(rel: u32) -> usize {
    match rel {
        EDB_BIN | IDB_BIN => 2,
        _ => 1,
    }
}

/// A random safe positive rule with the given head relation.
fn random_rule(head_rel: u32, body_pool: &[u32], rng: &mut impl Rng) -> Rule {
    let num_atoms = rng.random_range(1..4usize);
    let mut body: Vec<Literal> = Vec::new();
    for _ in 0..num_atoms {
        let rel = *body_pool.choose(rng).expect("non-empty pool");
        let terms: Vec<_> = (0..arity_of(rel))
            .map(|_| var(rng.random_range(1..4u32)))
            .collect();
        body.push(Literal::positive(DlAtom::new(r(rel), terms)));
    }
    let body_vars: Vec<u32> = body
        .iter()
        .flat_map(|l| l.atom.variables())
        .map(|v| v.index())
        .collect();
    let head_terms: Vec<_> = (0..arity_of(head_rel))
        .map(|_| var(*body_vars.choose(rng).expect("positive body")))
        .collect();
    Rule::new(DlAtom::new(r(head_rel), head_terms), body)
}

fn random_stratified_program(rng: &mut impl Rng) -> Program {
    let mut rules = Vec::new();
    for _ in 0..rng.random_range(2..5usize) {
        let head = *[IDB_BIN, IDB_UN].choose(rng).expect("non-empty");
        rules.push(random_rule(head, &[EDB_BIN, EDB_UN, IDB_BIN, IDB_UN], rng));
    }
    for _ in 0..rng.random_range(1..3usize) {
        let mut rule = random_rule(TOP_UN, &[EDB_UN, IDB_UN, EDB_BIN], rng);
        let negated = *[EDB_UN, IDB_UN].choose(rng).expect("non-empty");
        let bound = *rule.body[0]
            .atom
            .variables()
            .iter()
            .next()
            .expect("at least one variable");
        rule.body.push(Literal::negative(DlAtom::new(
            r(negated),
            vec![kbt::logic::Term::Var(bound)],
        )));
        rules.push(rule);
    }
    Program::new(rules).expect("generated rules are safe and stratified")
}

fn random_edb(rng: &mut impl Rng) -> Database {
    let mut b = DatabaseBuilder::new()
        .relation(r(EDB_BIN), 2)
        .relation(r(EDB_UN), 1);
    for _ in 0..rng.random_range(0..14usize) {
        b = b.fact(
            r(EDB_BIN),
            [rng.random_range(1..6u32), rng.random_range(1..6u32)],
        );
    }
    for _ in 0..rng.random_range(0..5usize) {
        b = b.fact(r(EDB_UN), [rng.random_range(1..6u32)]);
    }
    b.build().unwrap()
}

/// A list of facts, as the incremental delta entry points accept them.
type FactList = Vec<(RelId, Tuple)>;

/// A random delta batch over the extensional relations, biased so deletions
/// frequently hit stored facts (DRed must get real work).
fn random_delta(edb: &Database, rng: &mut impl Rng) -> (FactList, FactList) {
    let mut insertions = Vec::new();
    let mut deletions = Vec::new();
    for _ in 0..rng.random_range(0..4usize) {
        insertions.push((
            r(EDB_BIN),
            kbt::data::tuple![rng.random_range(1..6u32), rng.random_range(1..6u32)],
        ));
    }
    if rng.random_bool(0.5) {
        insertions.push((r(EDB_UN), kbt::data::tuple![rng.random_range(1..6u32)]));
    }
    let stored: Vec<(RelId, Tuple)> = edb.facts().map(|(rel, t)| (rel, t.clone())).collect();
    for _ in 0..rng.random_range(0..3usize) {
        if let Some((rel, t)) = stored.choose(rng) {
            deletions.push((*rel, t.clone()));
        }
    }
    (insertions, deletions)
}

fn apply_to_edb(edb: &mut Database, ins: &[(RelId, Tuple)], del: &[(RelId, Tuple)]) {
    for (rel, t) in del {
        edb.remove_fact(*rel, t);
    }
    for (rel, t) in ins {
        edb.insert_fact(*rel, t.clone()).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn widths_one_and_four_are_observationally_identical(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = random_stratified_program(&mut rng);
        let mut edb = random_edb(&mut rng);

        // one-shot: byte-identical fixpoints, identical statistics
        let (seq, seq_stats) = semi_naive_eval_threads(&program, &edb, 1).unwrap();
        let (par, par_stats) = semi_naive_eval_threads(&program, &edb, 4).unwrap();
        prop_assert!(seq == par, "one-shot fixpoints diverge (seed {seed})");
        prop_assert_eq!(seq_stats.derived_facts, par_stats.derived_facts);
        prop_assert_eq!(seq_stats, par_stats);

        // incremental: both widths track each other and the oracle across
        // random insert/delete batches
        let mut inc_seq = IncrementalEval::with_threads(&program, &edb, 1).unwrap();
        let mut inc_par = IncrementalEval::with_threads(&program, &edb, 4).unwrap();
        for step in 0..4 {
            let (ins, del) = random_delta(&edb, &mut rng);
            let s = inc_seq.apply_delta(&ins, &del).unwrap();
            let p = inc_par.apply_delta(&ins, &del).unwrap();
            prop_assert_eq!(s.derived_facts, p.derived_facts);
            prop_assert!(s == p, "per-delta stats diverge at step {}", step);
            apply_to_edb(&mut edb, &ins, &del);
            let current = inc_seq.current();
            prop_assert!(current == inc_par.current(), "sessions diverge at step {}", step);
            let (oracle, _) = semi_naive_eval_threads(&program, &edb, 1).unwrap();
            prop_assert!(current == oracle, "sessions diverge from the oracle at step {}", step);
        }
    }
}

// ---------------------------------------------------------------------------
// Above-threshold workload: the parallel rounds must actually fan out.
// ---------------------------------------------------------------------------

/// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
fn tc_datalog() -> Program {
    let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
    let path = |a, b| DlAtom::new(r(9), vec![a, b]);
    Program::new(vec![
        Rule::new(
            path(var(1), var(2)),
            vec![Literal::positive(edge(var(1), var(2)))],
        ),
        Rule::new(
            path(var(1), var(3)),
            vec![
                Literal::positive(path(var(1), var(2))),
                Literal::positive(edge(var(2), var(3))),
            ],
        ),
    ])
    .unwrap()
}

fn braid(chains: u32) -> Database {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for c in 0..chains {
        let base = c * 11 + 1;
        for i in 0..10 {
            b = b.fact(r(1), [base + i, base + i + 1]);
        }
    }
    b.build().unwrap()
}

#[test]
fn large_fixpoints_fan_out_identically() {
    let program = tc_datalog();
    let edb = braid(120); // 1 200 edges: every delta round clears the cutoff
    let (seq, seq_stats) = semi_naive_eval_threads(&program, &edb, 1).unwrap();
    for threads in [2, 4] {
        let (par, par_stats) = semi_naive_eval_threads(&program, &edb, threads).unwrap();
        assert_eq!(seq, par, "fixpoint diverges at width {threads}");
        assert_eq!(seq_stats, par_stats, "stats diverge at width {threads}");
    }
    assert_eq!(seq_stats.derived_facts, 120 * 55);
}

#[test]
fn large_incremental_deltas_fan_out_identically() {
    let program = tc_datalog();
    let edb = braid(120);
    let mut seq = IncrementalEval::with_threads(&program, &edb, 1).unwrap();
    let mut par = IncrementalEval::with_threads(&program, &edb, 4).unwrap();
    // link the first ten chains end-to-start (a ~110-edge merged chain, so
    // the insertion cascade and the later DRed overdeletion both clear the
    // engine's fan-out cutoff without the closure exploding quadratically)
    let link: Vec<(RelId, Tuple)> = (0..10u32)
        .map(|c| (r(1), kbt::data::tuple![c * 11 + 11, c * 11 + 12]))
        .collect();
    let s = seq.insert_facts(&link).unwrap();
    let p = par.insert_facts(&link).unwrap();
    assert_eq!(s, p);
    assert_eq!(seq.current(), par.current());

    let s = seq.remove_facts(&link).unwrap();
    let p = par.remove_facts(&link).unwrap();
    assert_eq!(s, p);
    assert!(s.rederived_facts > 0 || s.reused_facts > 0);
    assert_eq!(seq.current(), par.current());
    assert_eq!(seq.total_stats(), par.total_stats());
}

// ---------------------------------------------------------------------------
// Transformation level: EvalOptions::threads through the full chain.
// ---------------------------------------------------------------------------

fn tc_sentence() -> Sentence {
    Sentence::new(and(
        forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ),
        forall(
            [1, 2, 3],
            implies(
                and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                atom(2, [var(1), var(3)]),
            ),
        ),
    ))
    .unwrap()
}

#[test]
fn transformer_chains_are_width_independent() {
    let mut expr = Transform::Identity;
    for i in 0..20u32 {
        let grow = Sentence::new(atom(1, [cst(1_000_000 + i), cst(1_000_001 + i)])).unwrap();
        expr = expr
            .then(Transform::insert(grow))
            .then(Transform::insert(tc_sentence()))
            .then(Transform::project([r(1)]));
    }
    let kb = Knowledgebase::singleton(braid(60));

    let seq = Transformer::with_options(EvalOptions::with_threads(1))
        .apply(&expr, &kb)
        .unwrap();
    let par = Transformer::with_options(EvalOptions::with_threads(4))
        .apply(&expr, &kb)
        .unwrap();
    assert_eq!(seq.kb, par.kb, "knowledgebases diverge across widths");
    assert_eq!(seq.stats, par.stats, "statistics diverge across widths");
    assert!(
        seq.stats.reused_facts > 0,
        "the chain must run incrementally"
    );
}
