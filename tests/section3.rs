//! End-to-end integration tests for the Section 3 example transformations,
//! exercised through the facade crate exactly as a downstream user would.

use kbt::core::examples::{
    max_clique, monochromatic_triangle, parity, transitive_closure, transitive_reduction,
};
use kbt::prelude::*;

#[test]
fn example_1_transitive_closure_on_a_cycle_with_a_tail() {
    let t = Transformer::new();
    let edges = vec![(1, 2), (2, 3), (3, 1), (3, 4)];
    let closure = transitive_closure::transitive_closure(&t, &edges).unwrap();
    assert_eq!(
        closure,
        transitive_closure::baseline_transitive_closure(&edges)
    );
    // every vertex on the cycle reaches every other vertex and the tail
    assert!(closure.contains(&kbt::data::tuple![2, 1]));
    assert!(closure.contains(&kbt::data::tuple![1, 4]));
    assert!(!closure.contains(&kbt::data::tuple![4, 1]));
}

#[test]
fn example_2_and_3_reductions_of_a_diamond() {
    let t = Transformer::new();
    // diamond with a redundant long edge 1→4
    let edges = vec![(1, 2), (2, 4), (1, 3), (3, 4), (1, 4)];
    let reductions = transitive_reduction::transitive_reductions(&t, &edges).unwrap();
    let baseline = transitive_reduction::baseline_transitive_reductions(&edges);
    assert_eq!(reductions.len(), baseline.len());
    // the redundant edge is dropped from every reduction
    for r in &reductions {
        assert!(!r.contains(&kbt::data::tuple![1, 4]));
    }
    assert!(transitive_reduction::edges_in_every_reduction(&t, &edges, &[(1, 2), (3, 4)]).unwrap());
    assert!(!transitive_reduction::edges_in_every_reduction(&t, &edges, &[(1, 4)]).unwrap());
}

#[test]
fn example_5_partition_and_example_6_parity_agree_with_baselines() {
    let t = Transformer::new();
    let triangle = vec![(1, 2), (2, 3), (1, 3)];
    assert!(monochromatic_triangle::baseline_partition_exists(&triangle));
    assert!(
        monochromatic_triangle::has_monochromatic_triangle_free_partition(&t, &triangle).unwrap()
    );

    assert!(parity::is_even(&t, &[3, 9]).unwrap());
    assert!(!parity::is_even(&t, &[3, 9, 27]).unwrap());
}

#[test]
fn example_7_maximum_clique_of_a_square_with_one_diagonal() {
    let t = Transformer::new();
    let edges = vec![(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)];
    assert_eq!(max_clique::baseline_max_clique(&edges), 3);
    assert!(max_clique::has_clique_of_size(&t, &edges, 3).unwrap());
    // (the k = 4 refutation on this graph enumerates every minimal repair of
    // the inputs and is exercised, on a smaller graph, in the crate tests)
}
