//! Property-based verification of Theorem 2.1: the insertion operator
//! satisfies the Katsuno–Mendelzon update postulates on randomly generated
//! knowledgebases and sentences.

use kbt::core::postulates;
use kbt::core::{EvalOptions, Transformer};
use kbt::data::{Database, DatabaseBuilder, Knowledgebase, RelId};
use kbt::logic::Sentence;
use proptest::prelude::*;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// A small random database over a unary relation R1 and a binary relation R2.
fn arb_database() -> impl proptest::strategy::Strategy<Value = Database> {
    (
        proptest::collection::btree_set(0u32..3, 0..3),
        proptest::collection::btree_set((0u32..3, 0u32..3), 0..3),
    )
        .prop_map(|(unary, binary)| {
            let mut b = DatabaseBuilder::new().relation(r(1), 1).relation(r(2), 2);
            for x in unary {
                b = b.fact(r(1), [x]);
            }
            for (x, y) in binary {
                b = b.fact(r(2), [x, y]);
            }
            b.build().expect("well-formed")
        })
}

fn arb_knowledgebase() -> impl proptest::strategy::Strategy<Value = Knowledgebase> {
    proptest::collection::vec(arb_database(), 1..3)
        .prop_map(|dbs| Knowledgebase::from_databases(dbs).expect("uniform schema"))
}

/// Random ground-ish sentences over the same schema (kept small so the
/// exhaustive candidate spaces stay tractable).
fn arb_sentence() -> impl proptest::strategy::Strategy<Value = Sentence> {
    use kbt::logic::builder::*;
    let lit = (0u32..3, 0u32..3, any::<bool>()).prop_map(|(a, b, neg)| {
        let base = if a % 2 == 0 {
            atom(1, [cst(b)])
        } else {
            atom(2, [cst(a), cst(b)])
        };
        if neg {
            not(base)
        } else {
            base
        }
    });
    proptest::collection::vec(lit, 1..3).prop_flat_map(|lits| {
        any::<bool>().prop_map(move |conj| {
            let f = if conj {
                and_all(lits.clone())
            } else {
                or_all(lits.clone())
            };
            Sentence::new(f).expect("ground sentences are closed")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    #[test]
    fn km_postulates_hold_on_random_inputs(
        phi in arb_sentence(),
        psi in arb_sentence(),
        kb1 in arb_knowledgebase(),
        kb2 in arb_knowledgebase(),
    ) {
        let report = postulates::check_all(&phi, &psi, &kb1, &kb2, &EvalOptions::default())
            .expect("evaluation fits in the default limits");
        prop_assert!(report.all_hold(), "violated postulates: {report:?} for φ={phi}, ψ={psi}");
    }

    #[test]
    fn postulate_one_and_two_hold_for_quantified_sentences(
        kb in arb_knowledgebase(),
    ) {
        use kbt::logic::builder::*;
        // ∀x (R1(x) → ∃y R2(x,y)) — a mildly quantified sentence.
        let phi = Sentence::new(forall(
            [1],
            implies(atom(1, [var(1)]), exists([2], atom(2, [var(1), var(2)]))),
        )).unwrap();
        let t = Transformer::new();
        prop_assert!(postulates::postulate_1(&t, &phi, &kb).unwrap());
        prop_assert!(postulates::postulate_2(&t, &phi, &kb).unwrap());
        prop_assert!(postulates::postulate_3(&t, &phi, &kb).unwrap());
    }
}

#[test]
fn postulate_4_irrelevance_of_syntax_on_equivalent_formulations() {
    // (iv): logically equivalent sentences produce identical updates.  We
    // check representative equivalent pairs (commuted conjunction, double
    // negation, contraposition).
    use kbt::logic::builder::*;
    let t = Transformer::new();
    let kb = Knowledgebase::from_databases([
        DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .relation(r(2), 2)
            .build()
            .unwrap(),
        DatabaseBuilder::new()
            .fact(r(1), [2u32])
            .relation(r(2), 2)
            .build()
            .unwrap(),
    ])
    .unwrap();

    let a = atom(1, [cst(1)]);
    let b = atom(2, [cst(1), cst(2)]);
    let pairs = vec![
        (and(a.clone(), b.clone()), and(b.clone(), a.clone())),
        (a.clone(), not(not(a.clone()))),
        (
            implies(a.clone(), b.clone()),
            implies(not(b.clone()), not(a.clone())),
        ),
        (or(a.clone(), b.clone()), or(b, a)),
    ];
    for (f, g) in pairs {
        let left = t
            .insert(&Sentence::new(f.clone()).unwrap(), &kb)
            .unwrap()
            .kb;
        let right = t
            .insert(&Sentence::new(g.clone()).unwrap(), &kb)
            .unwrap()
            .kb;
        assert_eq!(
            left, right,
            "τ distinguished equivalent sentences {f} and {g}"
        );
    }
}
