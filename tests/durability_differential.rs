//! Crash-recovery differential for the durable service: a randomized
//! command stream is committed against a durable service, the process
//! "crashes" (the service is dropped without any shutdown step — with the
//! `Never` fsync policy nothing special has been flushed, exactly like a
//! SIGKILL after the OS absorbed the writes), and recovery must rebuild
//! **exactly** the state an in-memory oracle reaches by replaying the same
//! command prefix: same epoch, same knowledgebase, same commit counters.
//!
//! Three crash shapes are exercised, at evaluation widths 1 and 4:
//!
//! * a drop at a random **commit boundary** (the WAL ends on a record
//!   boundary; recovery replays everything),
//! * a **torn final record** injected by truncating the log mid-record
//!   (recovery truncates the tear and recovers the previous commit),
//! * a corrupt **interior** record (a flipped body byte with valid records
//!   following), which recovery must refuse with the typed
//!   `WalCorrupt` error rather than serve a silently wrong state.
//!
//! Evaluator statistics are deliberately excluded from the comparison:
//! recovery replays through fresh chain sessions, so `reused_facts` /
//! `rederived_facts` legitimately differ from the oracle's warm chains.
//! Everything the paper's semantics speaks about — the knowledgebase, the
//! vocabulary, the registry, the epoch — must be identical.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};

use rand::prelude::*;

use kbt::service::checkpoint::KEEP_CHECKPOINTS;
use kbt::service::wal::{Wal, WAL_FILE};
use kbt::service::{DurabilityConfig, FsyncPolicy, Response, Service, ServiceConfig, ServiceError};

const DEFINE: &str = "DEFINE refresh := project[edge]; \
     tau[(forall x0 x1. edge(x0, x1) -> reach(x0, x1)) & \
         (forall x0 x1 x2. reach(x0, x1) & edge(x1, x2) -> reach(x0, x2))]";

/// A deterministic pseudo-random commit stream: inserts, retractions of
/// *previously asserted* edges (a retract may not introduce names), and
/// incremental `APPLY`s of the registered closure refresh.
fn command_stream(seed: u64, len: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = vec![format!("ASSERT edge(0, 1)"), DEFINE.to_string()];
    let mut asserted: Vec<(u32, u32)> = vec![(0, 1)];
    while ops.len() < len {
        match rng.random_range(0..6u32) {
            0..=2 => {
                let a = rng.random_range(0..8u32);
                let b = rng.random_range(0..8u32);
                asserted.push((a, b));
                ops.push(format!("ASSERT edge({a}, {b})"));
            }
            3 => {
                let (a, b) = asserted[rng.random_range(0..asserted.len())];
                ops.push(format!("RETRACT edge({a}, {b})"));
            }
            _ => ops.push("APPLY refresh".to_string()),
        }
    }
    ops
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("kbt-durability-diff-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path, threads: usize, checkpoint_every: u64) -> ServiceConfig {
    ServiceConfig::builder()
        .threads(threads)
        .durability(Some(DurabilityConfig {
            data_dir: dir.to_path_buf(),
            // Never: drop-without-flush is then exactly what a SIGKILL
            // leaves behind once the OS has absorbed the writes
            fsync_policy: FsyncPolicy::Never,
            checkpoint_every_n_commits: checkpoint_every,
        }))
        .build()
}

/// The in-memory oracle: the same prefix replayed on a fresh service.
fn oracle(prefix: &[String], threads: usize) -> Service {
    let service = Service::new(ServiceConfig::builder().threads(threads).build());
    for op in prefix {
        service.execute(op).expect("oracle replay");
    }
    service
}

/// The differential assertion: everything semantics-bearing must match
/// (evaluator statistics excluded — see module docs).
fn assert_equivalent(recovered: &Service, oracle: &Service, context: &str) {
    assert_eq!(recovered.epoch(), oracle.epoch(), "{context}: epoch");
    let r = recovered.snapshot();
    let o = oracle.snapshot();
    assert_eq!(r.kb(), o.kb(), "{context}: knowledgebase");
    assert_eq!(
        r.stats().commits,
        o.stats().commits,
        "{context}: commit count"
    );
    assert_eq!(r.stats().applies, o.stats().applies, "{context}: applies");
    assert_eq!(r.stats().defines, o.stats().defines, "{context}: defines");
    assert_eq!(
        r.transforms().keys().collect::<Vec<_>>(),
        o.transforms().keys().collect::<Vec<_>>(),
        "{context}: registry"
    );
    // the queryable surface agrees too (certain folds across worlds)
    if let Some((rel, _)) = r.vocab().lookup_relation("reach") {
        let (orel, _) = o.vocab().lookup_relation("reach").expect("same vocab");
        assert_eq!(
            recovered.certain(&r, rel),
            oracle.certain(&o, orel),
            "{context}: certain(reach)"
        );
    }
}

#[test]
fn crashes_at_commit_boundaries_recover_the_oracle_state() {
    for threads in [1usize, 4] {
        for (trial, checkpoint_every) in [(0u64, 0u64), (1, 5), (2, 0), (3, 3)] {
            let seed = 0xD1FF + trial + threads as u64 * 101;
            let ops = command_stream(seed, 30);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
            let cut = rng.random_range(2..ops.len() + 1);
            let dir = scratch_dir(&format!("boundary-{threads}-{trial}"));
            let context = format!("threads={threads} trial={trial} cut={cut}");

            {
                let s = Service::open(durable_config(&dir, threads, checkpoint_every)).unwrap();
                for op in &ops[..cut] {
                    let r = s.execute(op).expect(&context);
                    // Never policy: committed but explicitly not flushed
                    match r {
                        Response::Committed { durable, .. }
                        | Response::Defined { durable, .. }
                        | Response::Applied { durable, .. } => {
                            assert_eq!(durable, Some(false), "{context}");
                        }
                        other => panic!("{context}: unexpected {other:?}"),
                    }
                }
                // crash: dropped without checkpoint or shutdown
            }
            if checkpoint_every > 0 {
                let checkpoints = std::fs::read_dir(&dir)
                    .unwrap()
                    .filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().starts_with("checkpoint-"))
                    .count();
                assert!(checkpoints >= 1, "{context}: a checkpoint must exist");
                assert!(checkpoints <= KEEP_CHECKPOINTS, "{context}: pruned");
            }

            let recovered = Service::open(durable_config(&dir, threads, checkpoint_every))
                .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
            assert_equivalent(&recovered, &oracle(&ops[..cut], threads), &context);

            // and the recovered service keeps committing durably
            recovered.execute("ASSERT edge(6, 7)").expect(&context);
            assert_eq!(recovered.epoch().get(), cut as u64 + 1, "{context}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn torn_final_records_recover_to_the_previous_commit() {
    for threads in [1usize, 4] {
        for trial in 0..3u64 {
            let seed = 0x70A2 + trial * 7 + threads as u64;
            let ops = command_stream(seed, 20);
            let dir = scratch_dir(&format!("torn-{threads}-{trial}"));
            let context = format!("threads={threads} trial={trial}");

            {
                let s = Service::open(durable_config(&dir, threads, 0)).unwrap();
                for op in &ops {
                    s.execute(op).expect(&context);
                }
            }
            // tear the final record: cut the log mid-record, at a random
            // byte strictly inside the last frame
            let wal_path = dir.join(WAL_FILE);
            let scan = Wal::scan(&wal_path).unwrap();
            assert!(!scan.torn_tail, "{context}: clean log before injection");
            let last = scan.records.last().expect("non-empty stream");
            let frame_len = (16 + last.command.len()) as u64;
            let last_start = scan.valid_len - frame_len;
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7EA2);
            let cut = last_start + rng.random_range(1..frame_len);
            OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .unwrap()
                .set_len(cut)
                .unwrap();

            let recovered = Service::open(durable_config(&dir, threads, 0))
                .unwrap_or_else(|e| panic!("{context}: torn tail must recover: {e}"));
            assert_equivalent(
                &recovered,
                &oracle(&ops[..ops.len() - 1], threads),
                &context,
            );
            // the tear is gone from disk: a second recovery sees a clean log
            let rescan = Wal::scan(&wal_path).unwrap();
            assert!(!rescan.torn_tail, "{context}: tear truncated on open");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn interior_corruption_is_refused_with_the_typed_error() {
    let ops = command_stream(0x1B7E, 12);
    let dir = scratch_dir("interior");
    {
        let s = Service::open(durable_config(&dir, 1, 0)).unwrap();
        for op in &ops {
            s.execute(op).unwrap();
        }
    }
    // flip one byte inside the *first* record's body — valid records
    // follow, so this is damage, not crash debris
    let wal_path = dir.join(WAL_FILE);
    let mut bytes = std::fs::read(&wal_path).unwrap();
    bytes[20] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();
    match Service::open(durable_config(&dir, 1, 0)) {
        Err(ServiceError::WalCorrupt { offset: 0, .. }) => {}
        Err(other) => panic!("expected WalCorrupt at offset 0, got {other}"),
        Ok(_) => panic!("corrupt interior record must refuse to open"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_checkpoint_alone_recovers_when_the_wal_tail_is_empty() {
    // checkpoint at the final epoch, then lose the whole WAL: recovery
    // must come back from the checkpoint with nothing to replay
    let ops = command_stream(0xCE0, 15);
    let dir = scratch_dir("checkpoint-only");
    {
        let s = Service::open(durable_config(&dir, 1, 0)).unwrap();
        for op in &ops {
            s.execute(op).unwrap();
        }
        s.execute("CHECKPOINT").unwrap();
    }
    std::fs::remove_file(dir.join(WAL_FILE)).unwrap();
    let recovered = Service::open(durable_config(&dir, 1, 0)).unwrap();
    assert_equivalent(&recovered, &oracle(&ops, 1), "checkpoint-only");
    let _ = std::fs::remove_dir_all(&dir);
}
