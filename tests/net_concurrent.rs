//! Concurrent differential test for the network front: ≥4 concurrent TCP
//! clients — three pipelining readers plus one writer — against a live
//! `kbt-serve`-equivalent server must observe **only** responses
//! byte-identical to a sequential oracle replay of the same commit stream,
//! keyed by the epoch every response names.  No torn reads, no partial
//! commits, no epoch ever served with the wrong contents — now across a
//! real socket, framing layer and session supervisor instead of
//! in-process calls (`tests/service_concurrent.rs` covers those).
//!
//! The commit stream mixes fact insertions, retractions and incremental
//! `APPLY`s of a registered transitive-closure refresh, as in the
//! in-process differential; the probe the readers hammer is
//! `QUERY CERTAIN reach`.  Runs at evaluation widths 1 and 4 explicitly
//! (the CI `KBT_THREADS` matrix varies the environment default on top,
//! which the service deliberately ignores in favour of its explicit
//! width).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kbt::service::net::{proto, Client, NetConfig, NetServer};
use kbt::service::{Service, ServiceConfig};

const READERS: usize = 3;
const PIPELINE: usize = 8;
const PROBE: &str = "QUERY CERTAIN reach";

/// Every status line a live server emits carries a per-session trace-ID
/// field (` id=<token>` — leading on `OK` lines per the fixed key order,
/// trailing on `ERR` lines), which the in-process oracle encoding lacks
/// and whose sequence number depends on how many commands the session has
/// issued.  Asserts the field is present and well-formed, then returns
/// the status without it for oracle comparison.
fn strip_trace_id(status: &str) -> String {
    let (head, rest) = status
        .split_once(" id=")
        .unwrap_or_else(|| panic!("status line lacks a trace ID: {status}"));
    let (id, tail) = match rest.split_once(' ') {
        Some((id, tail)) => (id, format!(" {tail}")),
        None => (rest, String::new()),
    };
    assert!(!id.is_empty(), "malformed trace ID in: {status}");
    format!("{head}{tail}")
}

const DEFINE: &str = "DEFINE refresh := project[edge]; \
     tau[(forall x0 x1. edge(x0, x1) -> reach(x0, x1)) & \
         (forall x0 x1 x2. reach(x0, x1) & edge(x1, x2) -> reach(x0, x2))]";

/// The deterministic commit stream (after `DEFINE`): inserts, deletes and
/// incremental applications over a 10-constant domain, dense enough that
/// retractions hit existing edges and the closure keeps changing shape.
fn commit_ops() -> Vec<String> {
    let mut ops = Vec::new();
    for i in 0..30u32 {
        let a = (i * 7) % 9;
        let b = (i * 5) % 9 + 1;
        ops.push(format!("ASSERT edge({a}, {b})"));
        if i % 3 == 2 {
            let j = i / 2;
            ops.push(format!(
                "RETRACT edge({}, {})",
                (j * 7) % 9,
                (j * 5) % 9 + 1
            ));
        }
        if i % 2 == 1 {
            ops.push("APPLY refresh".to_string());
        }
    }
    ops
}

/// Sequential oracle: replay the commands on a fresh in-process service
/// and record, per epoch, the **exact wire encoding** the probe query
/// must produce at that epoch (data lines + status line).
fn oracle(threads: usize) -> BTreeMap<u64, (Vec<String>, String)> {
    let service = Service::new(ServiceConfig::builder().threads(threads).build());
    let mut by_epoch = BTreeMap::new();
    let mut probe = |service: &Service| {
        let response = service.execute(PROBE).expect("probe after DEFINE");
        let (data, status) = proto::encode_response(&response, None);
        let epoch = service.epoch().get();
        by_epoch.insert(epoch, (data, status));
    };
    service.execute(DEFINE).unwrap();
    probe(&service);
    for op in commit_ops() {
        service.execute(&op).unwrap();
        probe(&service);
    }
    by_epoch
}

fn run_differential(threads: usize) {
    let by_epoch = oracle(threads);
    let final_epoch = *by_epoch.keys().last().unwrap();

    let service = Arc::new(Service::new(
        ServiceConfig::builder().threads(threads).build(),
    ));
    let server = NetServer::start(service.clone(), NetConfig::default()).expect("bind loopback");
    let addr = server.local_addr();

    // the writer registers the refresh first, so every reader-visible
    // epoch (>= 1) can resolve `reach`
    let mut writer = Client::connect(addr).expect("writer connects");
    let defined = writer.roundtrip(DEFINE).expect("DEFINE round-trip");
    assert_eq!(defined.epoch(), Some(1), "{}", defined.status);

    let done = Arc::new(AtomicBool::new(false));
    let started = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let done = done.clone();
            let started = started.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("reader connects");
                let mut observed: Vec<(u64, Vec<String>, String)> = Vec::new();
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let first_batch = observed.is_empty();
                    // pipeline a whole batch per round-trip
                    for _ in 0..PIPELINE {
                        client.send(PROBE).expect("send");
                    }
                    for _ in 0..PIPELINE {
                        let r = client.recv().expect("recv");
                        assert!(r.is_ok(), "probe must succeed: {}", r.status);
                        let epoch = r.epoch().expect("snapshot responses name epochs");
                        assert!(epoch >= last_epoch, "epochs must be monotonic per reader");
                        last_epoch = epoch;
                        observed.push((epoch, r.data, strip_trace_id(&r.status)));
                    }
                    if first_batch {
                        started.fetch_add(1, Ordering::Relaxed);
                    }
                }
                observed
            })
        })
        .collect();

    for op in commit_ops() {
        let r = writer.roundtrip(&op).expect("writer round-trip");
        assert!(r.is_ok(), "write must succeed: {}", r.status);
    }
    // On a loaded single-core machine a reader may not have had a slice
    // yet; hold the "done" signal until every reader has completed at
    // least one pipelined batch, so the assertions below never go vacuous.
    // A reader that dies early exits the wait too — its panic surfaces at
    // the join below instead of hanging this loop forever.
    while started.load(Ordering::Relaxed) < READERS
        && !readers.iter().any(std::thread::JoinHandle::is_finished)
    {
        std::thread::yield_now();
    }
    done.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    for reader in readers {
        for (epoch, data, status) in reader.join().expect("reader must not panic") {
            let (expected_data, expected_status) = by_epoch
                .get(&epoch)
                .unwrap_or_else(|| panic!("reader observed unknown epoch {epoch}"));
            assert_eq!(
                (&data, &status),
                (expected_data, expected_status),
                "epoch {epoch} over the wire differs from the sequential oracle (width {threads})"
            );
            total += 1;
        }
    }
    assert!(total > 0, "readers must have observed responses");

    // the final committed state is observable and matches the oracle tail
    let tail = writer.roundtrip(PROBE).expect("final probe");
    assert_eq!(tail.epoch(), Some(final_epoch));
    let (expected_data, expected_status) = &by_epoch[&final_epoch];
    assert_eq!(
        (&tail.data, &strip_trace_id(&tail.status)),
        (expected_data, expected_status)
    );

    // session accounting: 1 writer + READERS clients, nothing rejected
    let stats = writer.roundtrip("STATS").expect("stats");
    assert!(stats.is_ok());
    let sessions = service.session_counters();
    assert_eq!(sessions.accepted.get() as usize, 1 + READERS);
    assert_eq!(sessions.rejected.get(), 0);

    server.shutdown();
}

#[test]
fn concurrent_tcp_clients_observe_oracle_epochs_width_1() {
    run_differential(1);
}

#[test]
fn concurrent_tcp_clients_observe_oracle_epochs_width_4() {
    run_differential(4);
}
