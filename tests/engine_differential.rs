//! Differential tests for the indexed evaluation engine.
//!
//! Three layers of cross-checking:
//!
//! 1. **Datalog-level**: the engine's indexed semi-naive and naive modes
//!    must produce byte-identical fixpoints to the original nested-loop
//!    oracle (`reference_*_eval`) on the worked-example programs and on
//!    randomized stratified programs with negation.
//! 2. **Transformation-level**: the seven worked examples of Section 3 must
//!    give identical answers whichever `µ` strategy evaluates them (the
//!    Datalog fast path now runs on the engine).
//! 3. **Statistics**: the engine must do strictly less scanning than the
//!    oracle on workloads where indexes pay off.

use kbt::core::examples::{
    lemma21, max_clique, monochromatic_triangle, parity, robots, transitive_closure,
    transitive_reduction,
};
use kbt::core::{EvalOptions, Strategy, Transform, Transformer};
use kbt::data::{Database, DatabaseBuilder, RelId};
use kbt::datalog::{
    naive_eval, program_from_sentence, reference_naive_eval, reference_semi_naive_eval,
    semi_naive_eval, DlAtom, Literal, Program, Rule,
};
use kbt::logic::builder::var;
use rand::prelude::*;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// Asserts all four evaluation paths agree byte-for-byte on `program`/`edb`.
fn assert_four_way_agreement(program: &Program, edb: &Database, label: &str) {
    let (oracle, _) = reference_naive_eval(program, edb).expect(label);
    let (oracle_semi, _) = reference_semi_naive_eval(program, edb).expect(label);
    let (engine_naive, _) = naive_eval(program, edb).expect(label);
    let (engine_semi, _) = semi_naive_eval(program, edb).expect(label);
    assert_eq!(oracle, oracle_semi, "oracle modes disagree on {label}");
    assert_eq!(engine_naive, oracle, "engine naive diverges on {label}");
    assert_eq!(engine_semi, oracle, "engine semi-naive diverges on {label}");
}

fn graph(edges: &[(u32, u32)]) -> Database {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for &(x, y) in edges {
        b = b.fact(r(1), [x, y]);
    }
    b.build().unwrap()
}

#[test]
fn transitive_closure_program_agrees_on_varied_graphs() {
    let program = program_from_sentence(&transitive_closure::sentence_horn()).unwrap();
    let graphs: Vec<Vec<(u32, u32)>> = vec![
        vec![],
        vec![(1, 1)],
        vec![(1, 2), (2, 3), (3, 4), (4, 5)],
        vec![(1, 2), (2, 3), (3, 1)],
        vec![(1, 2), (3, 4), (5, 6)],
        vec![(1, 2), (2, 1), (2, 3), (3, 3)],
    ];
    for edges in graphs {
        assert_four_way_agreement(&program, &graph(&edges), &format!("graph {edges:?}"));
    }
}

#[test]
fn randomized_positive_programs_agree() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for case in 0..40 {
        let program = random_positive_program(&mut rng);
        let edb = random_edb(&mut rng);
        assert_four_way_agreement(&program, &edb, &format!("positive case {case}"));
    }
}

#[test]
fn randomized_stratified_programs_with_negation_agree() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..40 {
        let program = random_stratified_program(&mut rng);
        let edb = random_edb(&mut rng);
        assert_four_way_agreement(&program, &edb, &format!("stratified case {case}"));
    }
}

/// Relations: R1 binary EDB, R2 unary EDB; R11 binary IDB, R12 unary IDB
/// (stratum 0); R21 unary IDB (stratum 1, may negate stratum 0).
const EDB_BIN: u32 = 1;
const EDB_UN: u32 = 2;
const IDB_BIN: u32 = 11;
const IDB_UN: u32 = 12;
const TOP_UN: u32 = 21;

fn arity_of(rel: u32) -> usize {
    match rel {
        EDB_BIN | IDB_BIN => 2,
        _ => 1,
    }
}

/// A random safe positive rule with the given head relation.
fn random_rule(head_rel: u32, body_pool: &[u32], rng: &mut impl Rng) -> Rule {
    let num_atoms = rng.random_range(1..4usize);
    let mut body: Vec<Literal> = Vec::new();
    for _ in 0..num_atoms {
        let rel = *body_pool.choose(rng).expect("non-empty pool");
        let terms: Vec<_> = (0..arity_of(rel))
            .map(|_| var(rng.random_range(1..4u32)))
            .collect();
        body.push(Literal::positive(DlAtom::new(r(rel), terms)));
    }
    // the head draws its variables from the body, so the rule is safe
    let body_vars: Vec<u32> = body
        .iter()
        .flat_map(|l| l.atom.variables())
        .map(|v| v.index())
        .collect();
    let head_terms: Vec<_> = (0..arity_of(head_rel))
        .map(|_| var(*body_vars.choose(rng).expect("positive body")))
        .collect();
    Rule::new(DlAtom::new(r(head_rel), head_terms), body)
}

fn random_positive_program(rng: &mut impl Rng) -> Program {
    let mut rules = Vec::new();
    let num_rules = rng.random_range(2..5usize);
    for _ in 0..num_rules {
        let head = *[IDB_BIN, IDB_UN].choose(rng).expect("non-empty");
        rules.push(random_rule(head, &[EDB_BIN, EDB_UN, IDB_BIN, IDB_UN], rng));
    }
    Program::new(rules).expect("generated rules are safe")
}

fn random_stratified_program(rng: &mut impl Rng) -> Program {
    let mut rules = random_positive_program(rng).rules().to_vec();
    // one or two stratum-1 rules negating a stratum-0 or EDB relation
    for _ in 0..rng.random_range(1..3usize) {
        let mut rule = random_rule(TOP_UN, &[EDB_UN, IDB_UN, EDB_BIN], rng);
        let negated = *[EDB_UN, IDB_UN].choose(rng).expect("non-empty");
        let bound = *rule.body[0]
            .atom
            .variables()
            .iter()
            .next()
            .expect("at least one variable");
        rule.body.push(Literal::negative(DlAtom::new(
            r(negated),
            vec![kbt::logic::Term::Var(bound)],
        )));
        rules.push(rule);
    }
    Program::new(rules).expect("generated rules are safe and stratified")
}

fn random_edb(rng: &mut impl Rng) -> Database {
    let mut b = DatabaseBuilder::new()
        .relation(r(EDB_BIN), 2)
        .relation(r(EDB_UN), 1);
    for _ in 0..rng.random_range(0..8usize) {
        b = b.fact(
            r(EDB_BIN),
            [rng.random_range(1..5u32), rng.random_range(1..5u32)],
        );
    }
    for _ in 0..rng.random_range(0..4usize) {
        b = b.fact(r(EDB_UN), [rng.random_range(1..5u32)]);
    }
    b.build().unwrap()
}

// ---------------------------------------------------------------------------
// Transformation-level: the seven worked examples across µ strategies.
// ---------------------------------------------------------------------------

fn transformers() -> Vec<(&'static str, Transformer)> {
    vec![
        ("Auto", Transformer::new()),
        (
            "Grounding",
            Transformer::with_options(EvalOptions::with_strategy(Strategy::Grounding)),
        ),
    ]
}

#[test]
fn example_1_transitive_closure_strategies_agree() {
    let edges = vec![(1, 2), (2, 3), (3, 1), (3, 4)];
    let expected = transitive_closure::baseline_transitive_closure(&edges);
    for (name, t) in transformers() {
        let got = transitive_closure::transitive_closure(&t, &edges).unwrap();
        assert_eq!(got, expected, "strategy {name}");
    }
    // the Horn variant additionally runs on the engine-backed Datalog path
    let datalog = Transformer::with_options(EvalOptions::with_strategy(Strategy::Datalog));
    let got = transitive_closure::transitive_closure_horn(&datalog, &edges).unwrap();
    assert_eq!(got, expected, "engine-backed Datalog fast path");
}

#[test]
fn examples_2_and_3_transitive_reductions_strategies_agree() {
    let edges = vec![(1, 2), (2, 3), (1, 3)];
    let mut results = Vec::new();
    for (_, t) in transformers() {
        let mut reductions = transitive_reduction::transitive_reductions(&t, &edges).unwrap();
        reductions.sort();
        results.push(reductions);
    }
    assert_eq!(results[0], results[1]);
    assert!(!results[0].is_empty());
}

#[test]
fn example_4_robots_counterfactual_strategies_agree() {
    // The paper's answer to "would W still be orbiting?" is *no* (Example 4).
    for (name, t) in transformers() {
        assert!(
            !robots::would_w_still_be_orbiting(&t).unwrap(),
            "strategy {name}"
        );
        let updated = robots::learn_v_landed(&t).unwrap();
        assert_eq!(updated.len(), 2, "strategy {name}");
    }
}

#[test]
fn example_5_monochromatic_triangle_strategies_agree() {
    // a 4-cycle is 2-partitionable without a monochromatic triangle
    let edges = vec![(1, 2), (2, 3), (3, 4), (4, 1)];
    for (name, t) in transformers() {
        assert_eq!(
            monochromatic_triangle::has_monochromatic_triangle_free_partition(&t, &edges).unwrap(),
            monochromatic_triangle::baseline_partition_exists(&edges),
            "strategy {name}"
        );
    }
}

#[test]
fn example_6_parity_strategies_agree() {
    for set in [&[1u32][..], &[1, 2], &[1, 2, 3]] {
        for (name, t) in transformers() {
            assert_eq!(
                parity::is_even(&t, set).unwrap(),
                set.len() % 2 == 0,
                "strategy {name} on {set:?}"
            );
        }
    }
}

#[test]
fn example_7_max_clique_strategies_agree() {
    // Example 7's sentence is neither Horn nor ground, so `Auto` resolves to
    // `Grounding` — there is exactly one applicable strategy, and the
    // (expensive) negative cases are already exercised by the kbt-core unit
    // tests.  Here we only confirm both spellings take the same path.
    let edges = vec![(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)];
    assert_eq!(max_clique::baseline_max_clique(&edges), 3);
    for (name, t) in transformers() {
        assert!(
            max_clique::has_clique_of_size(&t, &edges, 3).unwrap(),
            "strategy {name}"
        );
    }
}

#[test]
fn lemma_21_counterexamples_strategies_agree() {
    for (name, t) in transformers() {
        let (glb_of_tau, tau_of_glb) = lemma21::both_orders(
            &t,
            &lemma21::glb_sentence(),
            &lemma21::glb_knowledgebase(),
            Transform::Glb,
        )
        .unwrap();
        assert_ne!(glb_of_tau, tau_of_glb, "strategy {name}");
    }
}

// ---------------------------------------------------------------------------
// Statistics: the engine must beat the oracle where indexing pays off.
// ---------------------------------------------------------------------------

#[test]
fn indexed_evaluation_scans_fewer_tuples_than_the_oracle() {
    let program = program_from_sentence(&transitive_closure::sentence_horn()).unwrap();
    let edges: Vec<(u32, u32)> = (1..60).map(|i| (i, i + 1)).collect();
    let edb = graph(&edges);
    let (fix_engine, engine_stats) = semi_naive_eval(&program, &edb).unwrap();
    let (fix_oracle, oracle_stats) = reference_semi_naive_eval(&program, &edb).unwrap();
    assert_eq!(fix_engine, fix_oracle);
    assert!(engine_stats.index_probes > 0);
    assert!(
        engine_stats.tuples_scanned * 5 < oracle_stats.tuples_scanned,
        "indexed semi-naive ({}) should scan at least 5x fewer tuples than the oracle ({})",
        engine_stats.tuples_scanned,
        oracle_stats.tuples_scanned
    );
}
