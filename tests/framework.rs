//! Cross-crate integration tests for the Section 2 framework: the worked
//! knowledgebase computations of the paper, the Lemma 2.1 counterexamples,
//! and agreement between the evaluation strategies on composed expressions.

use kbt::core::examples::lemma21;
use kbt::core::{EvalOptions, Strategy, Transform, Transformer};
use kbt::prelude::*;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

#[test]
fn section_2_space_example_end_to_end() {
    // kb = {({v}), ({w})}; τ_{R1(v)}(kb) = {({v}), ({v,w})}.
    let kb = Knowledgebase::from_databases([
        DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap(),
        DatabaseBuilder::new().fact(r(1), [2u32]).build().unwrap(),
    ])
    .unwrap();
    let phi = Sentence::new(kbt::logic::builder::atom(1, [kbt::logic::builder::cst(1)])).unwrap();
    for strategy in [Strategy::Auto, Strategy::Grounding, Strategy::Exhaustive] {
        let t = Transformer::with_options(EvalOptions::with_strategy(strategy));
        let result = t.insert(&phi, &kb).unwrap().kb;
        assert_eq!(result.len(), 2, "strategy {strategy:?}");
        assert!(result.certainly_holds(r(1), &kbt::data::tuple![1]));
        assert!(result.possibly_holds(r(1), &kbt::data::tuple![2]));
        assert!(!result.certainly_holds(r(1), &kbt::data::tuple![2]));
    }
}

#[test]
fn glb_lub_projection_compose_with_insertion() {
    // copy R1 into R2, take the lub, then project: a single world holding
    // the union of the copies.
    let kb = Knowledgebase::from_databases([
        DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap(),
        DatabaseBuilder::new().fact(r(1), [2u32]).build().unwrap(),
    ])
    .unwrap();
    let copy = Sentence::new(kbt::logic::builder::forall(
        [1],
        kbt::logic::builder::implies(
            kbt::logic::builder::atom(1, [kbt::logic::builder::var(1)]),
            kbt::logic::builder::atom(2, [kbt::logic::builder::var(1)]),
        ),
    ))
    .unwrap();
    let expr = Transform::insert(copy)
        .then(Transform::Lub)
        .then(Transform::project(vec![r(2)]));
    let result = Transformer::new().apply(&expr, &kb).unwrap().kb;
    let db = result.as_singleton().expect("lub yields a singleton");
    assert!(db.relation(r(1)).is_none());
    assert_eq!(db.relation(r(2)).unwrap().len(), 2);
}

#[test]
fn lemma_2_1_non_commutation_holds_in_both_directions() {
    let t = Transformer::new();
    let (a, b) = lemma21::both_orders(
        &t,
        &lemma21::glb_sentence(),
        &lemma21::glb_knowledgebase(),
        Transform::Glb,
    )
    .unwrap();
    assert_ne!(a, b);
    let (a, b) = lemma21::both_orders(
        &t,
        &lemma21::lub_sentence(),
        &lemma21::lub_knowledgebase(),
        Transform::Lub,
    )
    .unwrap();
    assert_ne!(a, b);
}

#[test]
fn strategies_agree_on_composed_expressions() {
    // τ (copy sources) ∘ τ (delete a fact) ∘ ⊔, evaluated under different
    // strategies, must coincide.
    let kb = Knowledgebase::from_databases([
        DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .build()
            .unwrap(),
        DatabaseBuilder::new()
            .fact(r(1), [2u32, 3])
            .build()
            .unwrap(),
    ])
    .unwrap();
    use kbt::logic::builder::*;
    let copy_sources = Sentence::new(forall(
        [1, 2],
        implies(atom(1, [var(1), var(2)]), atom(2, [var(1)])),
    ))
    .unwrap();
    let delete = Sentence::new(not(atom(1, [cst(2), cst(3)]))).unwrap();
    let expr = Transform::insert(copy_sources)
        .then(Transform::insert(delete))
        .then(Transform::Lub);

    let reference = Transformer::with_options(EvalOptions::with_strategy(Strategy::Exhaustive))
        .apply(&expr, &kb)
        .unwrap()
        .kb;
    for strategy in [Strategy::Auto, Strategy::Grounding] {
        let got = Transformer::with_options(EvalOptions::with_strategy(strategy))
            .apply(&expr, &kb)
            .unwrap()
            .kb;
        assert_eq!(reference, got, "strategy {strategy:?} disagrees");
    }
}

#[test]
fn facade_prelude_exposes_the_working_set() {
    // compile-time check that the prelude's types interoperate.
    let db: Database = DatabaseBuilder::new()
        .fact(RelId::new(1), [1u32])
        .build()
        .unwrap();
    let kb: Knowledgebase = Knowledgebase::singleton(db);
    let t: Transformer = Transformer::with_options(EvalOptions::default());
    let phi: Sentence =
        Sentence::new(kbt::logic::builder::atom(1, [kbt::logic::builder::cst(2)])).unwrap();
    let out: TransformResult = t.insert(&phi, &kb).unwrap();
    assert_eq!(out.kb.len(), 1);
    assert_eq!(out.stats.updates, 1);
}
