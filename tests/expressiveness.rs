//! Integration tests for the Section 5 expressiveness results: the ESO → ST1
//! encoding of Theorem 5.1, the ST → SO translation of Theorem 5.2, and the
//! fixpoint-query expressibility through the Datalog fast path.

use kbt::core::{EvalOptions, Strategy, Transformer};
use kbt::datalog::{program_from_sentence, semi_naive_eval};
use kbt::prelude::*;
use kbt::reductions::eso::{two_colourable_side_query, SecondOrderBaseline};
use kbt::reductions::so::translate_block;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

#[test]
fn theorem_5_1_eso_query_through_the_st1_encoding() {
    let query = two_colourable_side_query(r(1), r(7), r(8));
    let t = Transformer::new();
    // a 4-cycle is bipartite; a triangle is not
    for (edges, expect_all) in [
        (vec![(1u32, 2u32), (2, 3), (3, 4), (4, 1)], true),
        (vec![(1, 2), (2, 3), (1, 3)], false),
    ] {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for &(x, y) in &edges {
            b = b.fact(r(1), [x, y]).fact(r(1), [y, x]);
        }
        let db = b.build().unwrap();
        let expected = SecondOrderBaseline::evaluate(&query, &db);
        let got = query.evaluate_via_st1(&t, &db).unwrap();
        assert_eq!(expected, got, "ESO/ST1 mismatch on {edges:?}");
        assert_eq!(got.is_empty(), !expect_all);
    }
}

#[test]
fn theorem_5_2_translation_agrees_on_random_small_databases() {
    use kbt::logic::builder::*;
    // φ: R2 must contain the symmetric closure of R1 (both relations stored).
    let phi = Sentence::new(forall(
        [1, 2],
        implies(atom(1, [var(1), var(2)]), atom(2, [var(2), var(1)])),
    ))
    .unwrap();
    let t = Transformer::new();
    for edges in [
        vec![(1u32, 2u32)],
        vec![(1, 2), (2, 1)],
        vec![(1, 1), (1, 2)],
    ] {
        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(2), 2);
        for &(x, y) in &edges {
            b = b.fact(r(1), [x, y]);
        }
        let db = b.build().unwrap();
        let query = translate_block(phi.clone(), &db, r(2));
        assert_eq!(
            query.evaluate_via_transformation(&t, &db).unwrap(),
            query.evaluate_brute_force(&db),
            "SO translation mismatch on {edges:?}"
        );
    }
}

#[test]
fn fixpoint_queries_are_expressible_and_match_the_datalog_substrate() {
    // Inserting the Horn form of the transitive-closure sentence equals
    // running the Datalog engine directly (the fixpoint remark of Section 1).
    let phi = kbt::core::examples::transitive_closure::sentence_horn();
    let program = program_from_sentence(&phi).unwrap();
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for i in 1..7u32 {
        b = b.fact(r(1), [i, i + 1]);
    }
    let db = b.build().unwrap();

    let (fixpoint, _) = semi_naive_eval(&program, &db).unwrap();
    let t = Transformer::with_options(EvalOptions::with_strategy(Strategy::Datalog));
    let via_update = t.insert(&phi, &Knowledgebase::singleton(db)).unwrap().kb;
    assert_eq!(via_update.len(), 1);
    assert_eq!(
        via_update.as_singleton().unwrap().relation(r(2)),
        fixpoint.relation(r(2))
    );
    assert_eq!(fixpoint.relation(r(2)).unwrap().len(), 21);
}

#[test]
fn st_shaped_expressions_are_recognised() {
    let query = two_colourable_side_query(r(1), r(7), r(8));
    assert!(query.st1_transform().is_st_shape());
    let not_st = Transform::Glb.then(Transform::Lub);
    assert!(!not_st.is_st_shape());
}
