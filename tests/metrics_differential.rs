//! Observability must be invisible to evaluation: fixpoints and
//! `EngineStats` are byte-identical at every thread width whether the
//! metrics layer is enabled or disabled.
//!
//! This file deliberately holds a single `#[test]`: it toggles the
//! process-global registry's enabled flag, which would race any sibling
//! test running on another thread of the same test binary.

use kbt::data::{Database, DatabaseBuilder, RelId, Tuple};
use kbt::datalog::{semi_naive_eval_threads, DlAtom, IncrementalEval, Literal, Program, Rule};
use kbt::logic::builder::var;
use kbt::obs::Registry;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
fn tc_datalog() -> Program {
    let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
    let path = |a, b| DlAtom::new(r(9), vec![a, b]);
    Program::new(vec![
        Rule::new(
            path(var(1), var(2)),
            vec![Literal::positive(edge(var(1), var(2)))],
        ),
        Rule::new(
            path(var(1), var(3)),
            vec![
                Literal::positive(path(var(1), var(2))),
                Literal::positive(edge(var(2), var(3))),
            ],
        ),
    ])
    .unwrap()
}

/// Chains long enough that parallel rounds genuinely fan out.
fn braid(chains: u32) -> Database {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for c in 0..chains {
        let base = c * 11 + 1;
        for i in 0..10 {
            b = b.fact(r(1), [base + i, base + i + 1]);
        }
    }
    b.build().unwrap()
}

/// One full workload — a from-scratch fixpoint plus an incremental
/// insert/remove cycle — at the given width, returning everything an
/// observer could compare.
fn run_workload(
    width: usize,
) -> (
    Database,
    kbt::datalog::EvalStats,
    Vec<kbt::datalog::EvalStats>,
    Database,
) {
    let program = tc_datalog();
    let edb = braid(60);
    let (db, stats) = semi_naive_eval_threads(&program, &edb, width).unwrap();

    let mut session = IncrementalEval::with_threads(&program, &edb, width).unwrap();
    let link: Vec<(RelId, Tuple)> = (0..6u32)
        .map(|c| (r(1), kbt::data::tuple![c * 11 + 11, c * 11 + 12]))
        .collect();
    let delta_stats = vec![
        session.insert_facts(&link).unwrap(),
        session.remove_facts(&link).unwrap(),
    ];
    (db, stats, delta_stats, session.current())
}

#[test]
fn metrics_on_and_off_are_observationally_identical() {
    let registry = Registry::global();

    // Baseline: metrics enabled (the default), widths 1 and 4.
    assert!(registry.enabled());
    let on_w1 = run_workload(1);
    let on_w4 = run_workload(4);

    // With timing enabled the engine series must actually have recorded.
    let snap = registry.snapshot();
    assert!(snap.value("kbt_engine_evals_total").unwrap() >= 2);
    assert!(snap.value("kbt_engine_rounds_total").unwrap() > 0);
    assert!(snap.value("kbt_engine_derived_facts_total").unwrap() > 0);
    let rounds_timed = snap.histogram("kbt_engine_round_ns").unwrap().count;
    assert!(rounds_timed > 0, "round spans must record when enabled");
    assert!(snap.histogram("kbt_engine_eval_ns").unwrap().count > 0);
    assert!(snap.histogram("kbt_engine_delta_ns").unwrap().count > 0);

    // Same workloads with metrics disabled.
    registry.set_enabled(false);
    let off_w1 = run_workload(1);
    let off_w4 = run_workload(4);
    registry.set_enabled(true);

    // Fixpoints and statistics: byte-identical across the toggle, at both
    // widths, and across widths within each setting.
    assert!(on_w1 == off_w1, "width 1 diverges when metrics toggle");
    assert!(on_w4 == off_w4, "width 4 diverges when metrics toggle");
    assert_eq!(on_w1.1, on_w4.1, "stats diverge across widths (metrics on)");
    assert_eq!(
        off_w1.1, off_w4.1,
        "stats diverge across widths (metrics off)"
    );
    assert!(on_w1.0 == on_w4.0 && off_w1.0 == off_w4.0);
    assert!(on_w1.3 == on_w4.3 && off_w1.3 == off_w4.3);

    // Disabled means disabled: no new timing samples were taken (work
    // counters keep counting by design).
    let after = registry.snapshot();
    assert_eq!(
        after.histogram("kbt_engine_round_ns").unwrap().count,
        rounds_timed,
        "round spans must not record while disabled"
    );
}
