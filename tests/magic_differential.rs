//! Differential tests for goal-directed evaluation: the magic-set rewrite
//! must be *observationally identical* to the materializing oracle.
//!
//! Three layers:
//!
//! 1. **Vendored-proptest property**: randomized stratified positive
//!    programs over randomized extensional databases × random binding
//!    patterns on a random intensional goal.  The rewritten program — seed
//!    facts inserted, fixpoint run, answer predicate read, bound columns
//!    filtered — must be byte-identical to the full fixpoint filtered the
//!    same way, at widths 1 **and** 4 (and the two widths identical to
//!    each other, so goal-directed evaluation preserves the engine's
//!    width-independence contract).
//! 2. **Negation fallback**: programs whose top stratum negates a derived
//!    predicate make the rewrite refuse with the *typed*
//!    [`DatalogError::GoalDirected`] error — never a wrong answer — and
//!    the materializing fallback the service takes is the oracle by
//!    construction.  Negation confined below the goal's reachable slice
//!    must *not* trigger the refusal.
//! 3. **Subsumptive-table layer**: a memoized less-bound call re-filtered
//!    for a more-bound pattern must equal evaluating the more-bound goal
//!    directly.

use kbt::data::{Const, Database, DatabaseBuilder, RelId, Relation, Tuple};
use kbt::datalog::{
    magic_rewrite, semi_naive_eval_threads, DatalogError, DlAtom, Literal, Program, Rule,
};
use kbt::engine::table::{filter_rows, SubsumptiveTable};
use kbt::logic::builder::{cst, var};
use kbt::logic::Term;
use proptest::prelude::*;
use rand::prelude::*;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// Relations: R1 binary EDB, R2 unary EDB; R11 binary IDB, R12 unary IDB
/// (stratum 0); R21 unary IDB (top stratum, negating in the fallback test).
const EDB_BIN: u32 = 1;
const EDB_UN: u32 = 2;
const IDB_BIN: u32 = 11;
const IDB_UN: u32 = 12;
const TOP_UN: u32 = 21;

/// First relation index free for the rewrite's invented predicates.
const FIRST_FREE: u32 = 100;

fn arity_of(rel: u32) -> usize {
    match rel {
        EDB_BIN | IDB_BIN => 2,
        _ => 1,
    }
}

/// A random safe positive rule with the given head relation.
fn random_rule(head_rel: u32, body_pool: &[u32], rng: &mut impl Rng) -> Rule {
    let num_atoms = rng.random_range(1..4usize);
    let mut body: Vec<Literal> = Vec::new();
    for _ in 0..num_atoms {
        let rel = *body_pool.choose(rng).expect("non-empty pool");
        let terms: Vec<_> = (0..arity_of(rel))
            .map(|_| var(rng.random_range(1..4u32)))
            .collect();
        body.push(Literal::positive(DlAtom::new(r(rel), terms)));
    }
    let body_vars: Vec<u32> = body
        .iter()
        .flat_map(|l| l.atom.variables())
        .map(|v| v.index())
        .collect();
    let head_terms: Vec<_> = (0..arity_of(head_rel))
        .map(|_| var(*body_vars.choose(rng).expect("positive body")))
        .collect();
    Rule::new(DlAtom::new(r(head_rel), head_terms), body)
}

/// A random stratified *positive* program over the fixed schema, with the
/// top predicate derived from the lower strata (so every goal relation has
/// rules to rewrite).
fn random_positive_program(rng: &mut impl Rng) -> Program {
    let mut rules = Vec::new();
    for _ in 0..rng.random_range(2..5usize) {
        let head = *[IDB_BIN, IDB_UN].choose(rng).expect("non-empty");
        rules.push(random_rule(head, &[EDB_BIN, EDB_UN, IDB_BIN, IDB_UN], rng));
    }
    for _ in 0..rng.random_range(1..3usize) {
        rules.push(random_rule(TOP_UN, &[EDB_UN, IDB_UN, EDB_BIN], rng));
    }
    Program::new(rules).expect("generated rules are safe and stratified")
}

fn random_edb(rng: &mut impl Rng) -> Database {
    let mut b = DatabaseBuilder::new()
        .relation(r(EDB_BIN), 2)
        .relation(r(EDB_UN), 1);
    for _ in 0..rng.random_range(0..14usize) {
        b = b.fact(
            r(EDB_BIN),
            [rng.random_range(1..6u32), rng.random_range(1..6u32)],
        );
    }
    for _ in 0..rng.random_range(0..5usize) {
        b = b.fact(r(EDB_UN), [rng.random_range(1..6u32)]);
    }
    b.build().unwrap()
}

/// A random binding pattern over `arity` positions: each position is
/// independently a constant (bound) or a fresh variable (free).  Returns
/// the goal terms plus the `(position, constant)` pairs for filtering.
fn random_pattern(arity: usize, rng: &mut impl Rng) -> (Vec<Term>, Vec<(usize, Const)>) {
    let mut terms = Vec::with_capacity(arity);
    let mut bound = Vec::new();
    for i in 0..arity {
        if rng.random_bool(0.5) {
            let c = rng.random_range(1..6u32);
            terms.push(cst(c));
            bound.push((i, Const::new(c)));
        } else {
            // distinct variables: repeated-variable equality is a
            // service-level residual filter, not part of the rewrite
            terms.push(var(50 + i as u32));
        }
    }
    (terms, bound)
}

/// The materializing oracle: full fixpoint, goal relation, bound filter.
fn oracle(
    program: &Program,
    edb: &Database,
    rel: RelId,
    arity: usize,
    bound: &[(usize, Const)],
) -> Relation {
    let (db, _) = semi_naive_eval_threads(program, edb, 1).unwrap();
    match db.relation(rel) {
        Some(r) => filter_rows(r, bound),
        None => Relation::empty(arity),
    }
}

/// Goal-directed evaluation at one width: rewrite, seed, fixpoint, read the
/// answer predicate, filter the goal's own bound columns (the answer
/// predicate also carries tuples demanded by recursive sub-calls).
fn goal_directed(
    program: &Program,
    edb: &Database,
    rel: RelId,
    terms: &[Term],
    bound: &[(usize, Const)],
    threads: usize,
) -> Result<Relation, DatalogError> {
    let plan = magic_rewrite(program, rel, terms, FIRST_FREE)?;
    let mut seeded = edb.clone();
    for (seed_rel, consts) in &plan.seeds {
        seeded
            .insert_fact(*seed_rel, Tuple::new(consts.clone()))
            .unwrap();
    }
    let (db, _) = semi_naive_eval_threads(&plan.program, &seeded, threads)?;
    Ok(match db.relation(plan.answer) {
        Some(r) => filter_rows(r, bound),
        None => Relation::empty(terms.len()),
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn magic_rewrite_matches_the_materializing_oracle(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = random_positive_program(&mut rng);
        let edb = random_edb(&mut rng);
        let goal = *[IDB_BIN, IDB_UN, TOP_UN].choose(&mut rng).expect("non-empty");
        let (terms, bound) = random_pattern(arity_of(goal), &mut rng);

        let expect = oracle(&program, &edb, r(goal), arity_of(goal), &bound);
        let seq = goal_directed(&program, &edb, r(goal), &terms, &bound, 1)
            .expect("positive programs always rewrite");
        let par = goal_directed(&program, &edb, r(goal), &terms, &bound, 4)
            .expect("positive programs always rewrite");
        prop_assert!(seq == expect, "goal-directed diverges from the oracle (seed {seed})");
        prop_assert!(par == expect, "goal-directed diverges at width 4 (seed {seed})");
    }

    #[test]
    fn negated_goals_refuse_with_a_typed_error_and_fall_back(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // lower strata as before, but the top predicate negates a derived
        // predicate — binding the goal would have to push demand through
        // the negation, which the rewrite refuses rather than risks
        let mut rules = Vec::new();
        // at least one rule derives IDB_UN, so negating it is genuinely a
        // negated *intensional* subgoal (the refusal condition)
        rules.push(random_rule(IDB_UN, &[EDB_BIN, EDB_UN], &mut rng));
        for _ in 0..rng.random_range(2..5usize) {
            let head = *[IDB_BIN, IDB_UN].choose(&mut rng).expect("non-empty");
            rules.push(random_rule(head, &[EDB_BIN, EDB_UN, IDB_BIN, IDB_UN], &mut rng));
        }
        let mut top = random_rule(TOP_UN, &[EDB_UN, EDB_BIN], &mut rng);
        let guard = *top.body[0]
            .atom
            .variables()
            .iter()
            .next()
            .expect("at least one variable");
        top.body.push(Literal::negative(DlAtom::new(
            r(IDB_UN),
            vec![Term::Var(guard)],
        )));
        rules.push(top);
        let program = Program::new(rules).expect("stratified");
        let edb = random_edb(&mut rng);

        // bound goal on the negating stratum: typed refusal, never a wrong answer
        let terms = vec![cst(rng.random_range(1..6u32))];
        let bound = vec![(0usize, terms[0].as_const().unwrap())];
        let err = goal_directed(&program, &edb, r(TOP_UN), &terms, &bound, 1)
            .expect_err("demand through negation must refuse");
        prop_assert!(
            matches!(err, DatalogError::GoalDirected { .. }),
            "refusal must be the typed GoalDirected error, got {err:?}"
        );

        // ... and the materializing fallback (what the service then takes)
        // answers the goal; sanity-check it against a by-hand filter
        let full = oracle(&program, &edb, r(TOP_UN), 1, &[]);
        let fallback = oracle(&program, &edb, r(TOP_UN), 1, &bound);
        for row in fallback.iter() {
            prop_assert!(full.contains_row(row));
            prop_assert_eq!(row[0], bound[0].1);
        }

        // a goal *below* the negation never sees it: the reachable slice
        // excludes the top stratum, so the rewrite still succeeds
        let (low_terms, low_bound) = random_pattern(arity_of(IDB_UN), &mut rng);
        let got = goal_directed(&program, &edb, r(IDB_UN), &low_terms, &low_bound, 4)
            .expect("negation above the goal is out of the reachable slice");
        prop_assert!(got == oracle(&program, &edb, r(IDB_UN), 1, &low_bound));
    }

    #[test]
    fn subsumed_table_answers_equal_direct_evaluation(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let program = random_positive_program(&mut rng);
        let edb = random_edb(&mut rng);
        let goal = *[IDB_BIN, TOP_UN].choose(&mut rng).expect("non-empty");
        let arity = arity_of(goal);

        // memoize a *less*-bound call (drop one bound column at random)...
        let (terms, bound) = random_pattern(arity, &mut rng);
        let mut wide_terms = terms.clone();
        let mut wide_bound = bound.clone();
        if !wide_bound.is_empty() {
            let drop = rng.random_range(0..wide_bound.len());
            let (pos, _) = wide_bound.remove(drop);
            wide_terms[pos] = var(90);
        }
        let wide = goal_directed(&program, &edb, r(goal), &wide_terms, &wide_bound, 1)
            .expect("positive programs always rewrite");
        let mut table = SubsumptiveTable::new();
        table.insert(0, goal, &wide_bound, wide);

        // ... then the more-bound goal must be answered by subsumption,
        // byte-identical to evaluating it directly
        let direct = goal_directed(&program, &edb, r(goal), &terms, &bound, 1).unwrap();
        let via_table = table
            .lookup(0, goal, &bound)
            .expect("a less-bound memoized call subsumes");
        prop_assert!(via_table == direct, "subsumed answer diverges (seed {seed})");
    }
}
