//! Differential tests for incremental `τ_φ`-chain evaluation.
//!
//! Three layers:
//!
//! 1. **Transformation-level property** (vendored proptest): randomized
//!    `Seq` expressions mixing `τ_φ` (Horn fast-path sentences, ground
//!    insertions, ground *deletions*, world-splitting disjunctions) with
//!    `⊓` / `⊔` / `π` over random databases must evaluate byte-identically
//!    with the incremental chain sessions on and off.
//! 2. **Engine-level differential**: `IncrementalEval` under random
//!    insert/delete batches — including delete-heavy ones that exercise the
//!    DRed overdelete/rederive path — must match from-scratch
//!    `semi_naive_eval` after every batch, for both purely positive and
//!    stratified-negation programs.
//! 3. **Chain shape**: a long `(π ∘ τ_φ ∘ τ_fact)*` chain must produce the
//!    same knowledgebase incrementally and from scratch while reusing most
//!    of the engine's facts.

use kbt::core::{EvalOptions, Transform, Transformer};
use kbt::data::{DatabaseBuilder, Knowledgebase, RelId, Tuple};
use kbt::datalog::{semi_naive_eval, IncrementalEval};
use kbt::logic::builder::*;
use kbt::logic::Sentence;
use proptest::prelude::*;
use rand::prelude::*;

fn r(i: u32) -> RelId {
    RelId::new(i)
}

/// The Horn fast-path sentence: R2 := transitive closure of R1.
fn tc_sentence() -> Sentence {
    Sentence::new(and(
        forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ),
        forall(
            [1, 2, 3],
            implies(
                and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                atom(2, [var(1), var(3)]),
            ),
        ),
    ))
    .unwrap()
}

/// One random chain element; `a`, `b` are drawn from the constant domain.
fn chain_element(code: u8, a: u32, b: u32) -> Vec<Transform> {
    match code % 9 {
        // τ_TC then π: compute the closure, use it, drop it — keeps the
        // next τ_TC on the Horn fast path.
        0 => vec![
            Transform::insert(tc_sentence()),
            Transform::project([r(1), r(3)]),
        ],
        1 => vec![
            Transform::insert(tc_sentence()),
            Transform::Lub,
            Transform::project([r(1), r(3)]),
        ],
        // ground edge insertion / deletion (deletions feed the DRed path of
        // the next incremental τ_TC step)
        2 => vec![Transform::insert(
            Sentence::new(atom(1, [cst(a), cst(b)])).unwrap(),
        )],
        3 => vec![Transform::insert(
            Sentence::new(not(atom(1, [cst(a), cst(b)]))).unwrap(),
        )],
        // a world-splitting disjunction over the unary relation R3: the
        // knowledgebase stops being a singleton, so chain reuse must
        // correctly disengage and re-engage.
        4 => vec![Transform::insert(
            Sentence::new(or(atom(3, [cst(a)]), atom(3, [cst(b)]))).unwrap(),
        )],
        5 => vec![Transform::Glb],
        6 => vec![Transform::Lub],
        7 => vec![Transform::project([r(1), r(3)])],
        // ground node deletion
        _ => vec![Transform::insert(
            Sentence::new(not(atom(3, [cst(a)]))).unwrap(),
        )],
    }
}

fn arb_expression() -> impl proptest::strategy::Strategy<Value = Transform> {
    proptest::collection::vec((0u8..9, 1u32..6, 1u32..6), 1..10).prop_map(|codes| {
        let mut expr = Transform::Identity;
        for (code, a, b) in codes {
            for part in chain_element(code, a, b) {
                expr = expr.then(part);
            }
        }
        expr
    })
}

fn arb_knowledgebase() -> impl proptest::strategy::Strategy<Value = Knowledgebase> {
    (
        proptest::collection::btree_set((1u32..6, 1u32..6), 0..7),
        proptest::collection::btree_set(1u32..6, 0..3),
    )
        .prop_map(|(edges, nodes)| {
            let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
            for (x, y) in edges {
                b = b.fact(r(1), [x, y]);
            }
            for n in nodes {
                b = b.fact(r(3), [n]);
            }
            Knowledgebase::singleton(b.build().unwrap())
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn incremental_chains_are_byte_identical_to_from_scratch(
        expr in arb_expression(),
        kb in arb_knowledgebase(),
    ) {
        let incremental = Transformer::new().apply(&expr, &kb);
        let from_scratch = Transformer::with_options(EvalOptions {
            incremental: false,
            ..EvalOptions::default()
        })
        .apply(&expr, &kb);
        match (incremental, from_scratch) {
            (Ok(inc), Ok(fs)) => {
                prop_assert!(
                    inc.kb == fs.kb,
                    "kb diverges for {}: {:?} != {:?}",
                    expr,
                    inc.kb,
                    fs.kb
                );
                prop_assert_eq!(inc.stats.updates, fs.stats.updates);
                prop_assert_eq!(inc.stats.operators, fs.stats.operators);
                prop_assert_eq!(inc.stats.minimal_models, fs.stats.minimal_models);
            }
            (inc, fs) => {
                prop_assert!(
                    inc.is_err() && fs.is_err(),
                    "only one path failed for {}: incremental={:?} scratch={:?}",
                    expr, inc.is_err(), fs.is_err()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-level: IncrementalEval vs from-scratch semi-naive under random
// insert/delete batches.
// ---------------------------------------------------------------------------

fn tc_program() -> kbt::datalog::Program {
    kbt::datalog::program_from_sentence(&tc_sentence()).unwrap()
}

/// reach = TC(edge); unreach(x,y) :- node(x), node(y), ~reach(x,y).
fn negation_program() -> kbt::datalog::Program {
    use kbt::datalog::{DlAtom, Literal, Program, Rule};
    let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
    let reach = |a, b| DlAtom::new(r(2), vec![a, b]);
    let node = |a| DlAtom::new(r(3), vec![a]);
    let unreach = |a, b| DlAtom::new(r(4), vec![a, b]);
    Program::new(vec![
        Rule::new(
            reach(var(1), var(2)),
            vec![Literal::positive(edge(var(1), var(2)))],
        ),
        Rule::new(
            reach(var(1), var(3)),
            vec![
                Literal::positive(reach(var(1), var(2))),
                Literal::positive(edge(var(2), var(3))),
            ],
        ),
        Rule::new(
            unreach(var(1), var(2)),
            vec![
                Literal::positive(node(var(1))),
                Literal::positive(node(var(2))),
                Literal::negative(reach(var(1), var(2))),
            ],
        ),
    ])
    .unwrap()
}

fn random_edge(rng: &mut impl Rng) -> (u32, u32) {
    (rng.random_range(1..7u32), rng.random_range(1..7u32))
}

/// Random delta batches over the edge relation; `delete_bias` skews towards
/// deletions of currently stored edges so DRed gets real work.
fn run_random_deltas(
    program: &kbt::datalog::Program,
    base_nodes: bool,
    delete_bias: bool,
    rng: &mut impl Rng,
) -> (usize, usize) {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    if base_nodes {
        b = b.relation(r(3), 1);
        for n in 1..7u32 {
            b = b.fact(r(3), [n]);
        }
    }
    for _ in 0..rng.random_range(3..10usize) {
        let (x, y) = random_edge(rng);
        b = b.fact(r(1), [x, y]);
    }
    let mut edb = b.build().unwrap();

    let mut inc = IncrementalEval::new(program, &edb).unwrap();
    let (mut reused, mut rederived) = (0usize, 0usize);
    for _ in 0..6 {
        let mut ins: Vec<(RelId, Tuple)> = Vec::new();
        let mut del: Vec<(RelId, Tuple)> = Vec::new();
        let stored: Vec<Tuple> = edb.relation(r(1)).unwrap().tuples().collect();
        for _ in 0..rng.random_range(1..4usize) {
            let delete = !stored.is_empty() && (delete_bias || rng.random_range(0..2u32) == 0);
            if delete {
                let t = stored[rng.random_range(0..stored.len())].clone();
                del.push((r(1), t));
            } else {
                let (x, y) = random_edge(rng);
                ins.push((r(1), kbt::data::tuple![x, y]));
            }
        }
        for (rel, t) in &del {
            edb.remove_fact(*rel, t);
        }
        for (rel, t) in &ins {
            edb.insert_fact(*rel, t.clone()).unwrap();
        }
        let stats = inc.apply_delta(&ins, &del).unwrap();
        reused += stats.reused_facts;
        rederived += stats.rederived_facts;

        let (want, _) = semi_naive_eval(program, &edb).unwrap();
        assert_eq!(
            inc.current(),
            want,
            "incremental diverges after ins={ins:?} del={del:?}"
        );
    }
    (reused, rederived)
}

#[test]
fn engine_incremental_matches_from_scratch_on_random_positive_deltas() {
    let mut rng = StdRng::seed_from_u64(0x17C1);
    let program = tc_program();
    let mut total_reused = 0;
    for _ in 0..20 {
        let (reused, _) = run_random_deltas(&program, false, false, &mut rng);
        total_reused += reused;
    }
    assert!(total_reused > 0, "chains must reuse facts");
}

#[test]
fn engine_incremental_survives_delete_heavy_workloads() {
    let mut rng = StdRng::seed_from_u64(0xD3ED);
    let program = tc_program();
    let mut total_rederived = 0;
    for _ in 0..20 {
        let (_, rederived) = run_random_deltas(&program, false, true, &mut rng);
        total_rederived += rederived;
    }
    assert!(
        total_rederived > 0,
        "delete-heavy graphs must hit the DRed rederivation path"
    );
}

#[test]
fn engine_incremental_handles_stratified_negation_deltas() {
    let mut rng = StdRng::seed_from_u64(0x5E6A);
    let program = negation_program();
    for _ in 0..12 {
        run_random_deltas(&program, true, false, &mut rng);
    }
}

// ---------------------------------------------------------------------------
// Chain shape: long (π ∘ τ_TC ∘ τ_fact)* chains.
// ---------------------------------------------------------------------------

#[test]
fn long_chain_reuses_most_of_the_engine_state() {
    let mut b = DatabaseBuilder::new().relation(r(1), 2);
    for c in 0..40u32 {
        let base = c * 11 + 1;
        for i in 0..10 {
            b = b.fact(r(1), [base + i, base + i + 1]);
        }
    }
    let kb = Knowledgebase::singleton(b.build().unwrap());

    let mut expr = Transform::Identity;
    for i in 0..12u32 {
        let grow = Sentence::new(atom(1, [cst(1000 + i), cst(1001 + i)])).unwrap();
        expr = expr
            .then(Transform::insert(grow))
            .then(Transform::insert(tc_sentence()))
            .then(Transform::project([r(1)]));
    }

    let incremental = Transformer::new().apply(&expr, &kb).unwrap();
    let from_scratch = Transformer::with_options(EvalOptions {
        incremental: false,
        ..EvalOptions::default()
    })
    .apply(&expr, &kb)
    .unwrap();

    assert_eq!(incremental.kb, from_scratch.kb);
    assert!(incremental.stats.reused_facts > 0);
    assert!(
        incremental.stats.tuples_scanned * 4 < from_scratch.stats.tuples_scanned,
        "incremental ({}) must scan far fewer tuples than from-scratch ({})",
        incremental.stats.tuples_scanned,
        from_scratch.stats.tuples_scanned
    );
}

/// The projected-away relation must not leak back into later steps when the
/// chain session keeps it alive internally.
#[test]
fn chain_results_respect_projection_schemas() {
    let db = DatabaseBuilder::new()
        .fact(r(1), [1u32, 2])
        .fact(r(1), [2u32, 3])
        .build()
        .unwrap();
    let kb = Knowledgebase::singleton(db);
    let expr = Transform::insert(tc_sentence())
        .then(Transform::project([r(1)]))
        .then(Transform::insert(tc_sentence()))
        .then(Transform::project([r(2)]));
    let result = Transformer::new().apply(&expr, &kb).unwrap();
    let world = result.kb.as_singleton().unwrap();
    assert!(world.relation(r(1)).is_none());
    assert_eq!(world.relation(r(2)).unwrap().len(), 3);
}
