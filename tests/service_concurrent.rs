//! Concurrent differential test for `kbt-service`: N reader threads
//! snapshotting in the middle of a commit stream must each observe some
//! committed epoch whose knowledgebase is **identical to a sequential
//! oracle replay** of the same command prefix — no torn reads, no partial
//! commits, no epoch ever observed with the wrong contents.
//!
//! The commit stream mixes fact insertions, retractions (exercising the
//! engine's DRed deletion path through the persistent chain sessions) and
//! incremental `APPLY`s of a registered transitive-closure refresh.  The
//! differential runs at evaluation widths 1 and 4 explicitly (and the CI
//! `KBT_THREADS={1,4}` matrix varies the environment default on top —
//! which the service deliberately ignores in favour of its explicit
//! width).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kbt::data::Knowledgebase;
use kbt::service::{Service, ServiceConfig};

const READERS: usize = 4;

/// The registered refresh: drop the derived closure, re-derive it from the
/// current edges (incrementally, through the persistent chain session).
const DEFINE: &str = "DEFINE refresh := project[edge]; \
     tau[(forall x0 x1. edge(x0, x1) -> reach(x0, x1)) & \
         (forall x0 x1 x2. reach(x0, x1) & edge(x1, x2) -> reach(x0, x2))]";

/// The deterministic commit stream (after `DEFINE`): inserts, deletes and
/// incremental applications over a 10-constant domain, dense enough that
/// retractions hit existing edges and the closure keeps changing shape.
fn commit_ops() -> Vec<String> {
    let mut ops = Vec::new();
    for i in 0..36u32 {
        let a = (i * 7) % 9;
        let b = (i * 5) % 9 + 1;
        ops.push(format!("ASSERT edge({a}, {b})"));
        if i % 3 == 2 {
            let j = i / 2;
            ops.push(format!(
                "RETRACT edge({}, {})",
                (j * 7) % 9,
                (j * 5) % 9 + 1
            ));
        }
        if i % 2 == 1 {
            ops.push("APPLY refresh".to_string());
        }
    }
    ops
}

/// Sequential oracle: replay `DEFINE` + the ops on a fresh service,
/// recording the knowledgebase at every epoch (index = epoch number).
fn oracle(threads: usize) -> Vec<Knowledgebase> {
    let service = Service::new(ServiceConfig::builder().threads(threads).build());
    let mut by_epoch = vec![service.snapshot().kb().clone()];
    service.execute(DEFINE).unwrap();
    by_epoch.push(service.snapshot().kb().clone());
    for op in commit_ops() {
        service.execute(&op).unwrap();
        let snap = service.snapshot();
        assert_eq!(
            snap.epoch().get() as usize,
            by_epoch.len(),
            "each command must commit exactly one epoch"
        );
        by_epoch.push(snap.kb().clone());
    }
    by_epoch
}

fn run_differential(threads: usize) {
    let by_epoch = oracle(threads);

    let service = Arc::new(Service::new(
        ServiceConfig::builder().threads(threads).build(),
    ));
    let done = Arc::new(AtomicBool::new(false));
    let started = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let service = service.clone();
            let done = done.clone();
            let started = started.clone();
            std::thread::spawn(move || {
                let mut observed: Vec<(u64, Knowledgebase)> = Vec::new();
                let mut last_epoch = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    let epoch = snap.epoch().get();
                    assert!(epoch >= last_epoch, "epochs must be monotonic per reader");
                    last_epoch = epoch;
                    // exercise read-path evaluation against the snapshot
                    // while the writer keeps committing
                    if let Some((rel, _)) = snap.vocab().lookup_relation("reach") {
                        let certain = service.certain(&snap, rel);
                        let possible = service.possible(&snap, rel);
                        assert!(certain.is_subset(&possible));
                    }
                    if observed.is_empty() {
                        started.fetch_add(1, Ordering::Relaxed);
                    }
                    observed.push((epoch, snap.kb().clone()));
                }
                observed
            })
        })
        .collect();

    service.execute(DEFINE).unwrap();
    for op in commit_ops() {
        service.execute(&op).unwrap();
    }
    // On a loaded single-core machine the readers may not have had a
    // single slice yet; hold the "done" signal until each has observed at
    // least one snapshot, so the assertions below are never vacuous.
    // A reader that dies early exits the wait too — its panic surfaces at
    // the join below instead of hanging this loop forever.
    while started.load(Ordering::Relaxed) < READERS
        && !readers.iter().any(std::thread::JoinHandle::is_finished)
    {
        std::thread::yield_now();
    }
    done.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    let mut distinct = std::collections::BTreeSet::new();
    for reader in readers {
        for (epoch, kb) in reader.join().expect("reader must not panic") {
            let expected = &by_epoch[epoch as usize];
            assert_eq!(
                &kb, expected,
                "snapshot at epoch {epoch} differs from the sequential oracle (width {threads})"
            );
            distinct.insert(epoch);
            total += 1;
        }
    }
    assert!(total > 0, "readers must have observed snapshots");
    // sanity: the final epoch was observable and matches the oracle's tail
    let final_epoch = service.snapshot().epoch().get() as usize;
    assert_eq!(final_epoch + 1, by_epoch.len());
    assert_eq!(service.snapshot().kb(), &by_epoch[final_epoch]);
}

#[test]
fn concurrent_readers_observe_oracle_epochs_width_1() {
    run_differential(1);
}

#[test]
fn concurrent_readers_observe_oracle_epochs_width_4() {
    run_differential(4);
}

#[test]
fn wire_format_round_trip_preserves_service_behaviour() {
    // A transformation DEFINEd from hand-written text is published in its
    // canonical rendered wire format; re-DEFINEing a second service from
    // *that* rendering (one full parse → pretty → parse cycle) must drive
    // it to byte-identical committed states.  This is the service-level
    // consequence of the `parse(pretty(φ)) == φ` identity.
    let original = Service::new(ServiceConfig::builder().threads(1).build());
    original.execute(DEFINE).unwrap();
    let wire_text = original.snapshot().transforms()["refresh"].text.clone();

    let replayed = Service::new(ServiceConfig::builder().threads(1).build());
    replayed
        .execute(&format!("DEFINE refresh := {wire_text}"))
        .unwrap();
    // the canonical rendering is a fixed point of render ∘ parse
    assert_eq!(
        replayed.snapshot().transforms()["refresh"].text,
        wire_text,
        "re-parsing the wire format must not change the rendering"
    );

    for op in commit_ops() {
        original.execute(&op).unwrap();
        replayed.execute(&op).unwrap();
    }
    assert_eq!(original.snapshot().kb(), replayed.snapshot().kb());
    assert_eq!(
        format!("{:?}", original.snapshot().kb()),
        format!("{:?}", replayed.snapshot().kb()),
        "rendered states must be byte-identical"
    );
}
