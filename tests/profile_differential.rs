//! Profiling must be invisible to evaluation: a service driven through an
//! identical workload answers byte-identically whether its hypothetical
//! reads go through `QUERY` or `PROFILE`, at evaluation widths 1 and 4 —
//! published epochs, knowledgebases and `ServiceStats` included.  At the
//! core layer, [`Transformer::apply_profiled`] must reproduce
//! [`Transformer::apply`] exactly.  The golden `EXPLAIN` rendering of the
//! Section 3 transitive-closure example is pinned here too.

use kbt::core::{EvalOptions, Transform, Transformer};
use kbt::data::{DatabaseBuilder, Knowledgebase, RelId};
use kbt::logic::builder::{and, atom, forall, implies, var};
use kbt::logic::Sentence;
use kbt::service::{Response, Service, ServiceConfig};

/// The Section 3 Example 1 closure, as the service's transform syntax.
const TC: &str = "tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
                  (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]";

/// The hypothetical read both runs issue after every write: the refresh
/// idiom (`project[edge]` drops the stale closure first, keeping the
/// insertion on the datalog fast path).
const READ: &str = "project[edge]; \
                    tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
                    (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]; lub";

/// The same closure as a core-layer sentence (edge = R1, path = R2).
fn tc_sentence() -> Sentence {
    Sentence::new(and(
        forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ),
        forall(
            [1, 2, 3],
            implies(
                and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                atom(2, [var(1), var(3)]),
            ),
        ),
    ))
    .unwrap()
}

fn namer(rel: RelId) -> String {
    match rel.index() {
        1 => "edge".to_string(),
        2 => "path".to_string(),
        i => format!("R{i}"),
    }
}

/// Blanks the only nondeterministic field of a `PROFILE` data row so rows
/// can be compared across runs and widths.
fn strip_elapsed(row: &str) -> String {
    let Some(start) = row.find(" elapsed_ns=") else {
        return row.to_string();
    };
    let tail = &row[start + " elapsed_ns=".len()..];
    let end = tail
        .find(' ')
        .map_or(row.len(), |i| start + " elapsed_ns=".len() + i);
    format!("{} elapsed_ns=_{}", &row[..start], &row[end..])
}

/// The deterministic write stream both services replay identically.
fn write_ops() -> Vec<String> {
    let mut ops = Vec::new();
    ops.push("ASSERT edge(1, 2), edge(2, 3), edge(3, 1), edge(3, 4)".to_string());
    ops.push(format!("DEFINE tc := project[edge]; {TC}"));
    ops.push("APPLY tc".to_string());
    for i in 0..6u32 {
        ops.push(format!("ASSERT edge({}, {})", 4 + i, 5 + i));
        if i % 2 == 1 {
            ops.push("APPLY tc".to_string());
        }
        if i == 3 {
            ops.push("RETRACT edge(3, 4)".to_string());
            ops.push("APPLY tc".to_string());
        }
    }
    ops
}

/// One full run at the given width: replays the write stream, issuing the
/// hypothetical closure read through `QUERY` or `PROFILE` after every
/// write.  Returns everything an observer could compare: the (epoch,
/// world-count) pair of every read, the profile rows (elapsed blanked;
/// empty for the `QUERY` run), and the terminal service state.
#[allow(clippy::type_complexity)]
fn run(
    threads: usize,
    profile: bool,
) -> (
    Vec<(u64, usize)>,
    Vec<Vec<String>>,
    u64,
    Knowledgebase,
    kbt::service::ServiceStats,
    String,
    String,
) {
    let service = Service::new(ServiceConfig::builder().threads(threads).build());
    let read = if profile {
        format!("PROFILE {READ}")
    } else {
        format!("QUERY {READ}")
    };
    let mut reads = Vec::new();
    let mut rows = Vec::new();
    for op in write_ops() {
        service.execute(&op).unwrap();
        match service.execute(&read).unwrap() {
            Response::Worlds { epoch, worlds } => reads.push((epoch.get(), worlds.len())),
            Response::Profile {
                epoch,
                worlds,
                rows: r,
            } => {
                reads.push((epoch.get(), worlds));
                rows.push(r.iter().map(|row| strip_elapsed(row)).collect());
            }
            other => panic!("unexpected read response: {other}"),
        }
    }
    let snap = service.snapshot();
    let certain = service.execute("QUERY CERTAIN path").unwrap().to_string();
    let stats = service.execute("STATS").unwrap().to_string();
    (
        reads,
        rows,
        snap.epoch().get(),
        snap.kb().clone(),
        *snap.stats(),
        certain,
        stats,
    )
}

#[test]
fn service_profiling_on_and_off_are_observationally_identical() {
    let q1 = run(1, false);
    let p1 = run(1, true);
    let q4 = run(4, false);
    let p4 = run(4, true);

    // PROFILE never commits and speaks for the same epoch / world count as
    // the equivalent QUERY, at both widths.
    assert_eq!(q1.0, p1.0, "width 1 reads diverge when profiling");
    assert_eq!(q4.0, p4.0, "width 4 reads diverge when profiling");

    // Published epochs, knowledgebases and writer statistics are
    // byte-identical across the QUERY/PROFILE toggle …
    for (q, p, width) in [(&q1, &p1, 1), (&q4, &p4, 4)] {
        assert_eq!(q.2, p.2, "width {width}: epochs diverge");
        assert!(q.3 == p.3, "width {width}: knowledgebases diverge");
        assert_eq!(q.4, p.4, "width {width}: ServiceStats diverge");
        assert_eq!(q.5, p.5, "width {width}: certain answers diverge");
        assert_eq!(q.6, p.6, "width {width}: STATS reports diverge");
    }

    // … and across widths within each mode.
    assert!(q1.3 == q4.3 && p1.3 == p4.3);
    assert_eq!(q1.4, q4.4, "stats diverge across widths (QUERY)");
    assert_eq!(p1.4, p4.4, "stats diverge across widths (PROFILE)");

    // The profile rows themselves (elapsed blanked) are deterministic
    // across widths: per-rule derived/probe/scan counts don't depend on
    // the evaluation width.
    assert_eq!(p1.1, p4.1, "profile rows diverge across widths");
    let last = p1.1.last().unwrap();
    assert!(!last.is_empty());
    for row in last {
        assert!(row.contains(" elapsed_ns=_ :: "), "unstripped row: {row}");
    }
}

#[test]
fn core_apply_profiled_is_invisible_at_widths_1_and_4() {
    let kb = Knowledgebase::from_databases([
        DatabaseBuilder::new()
            .fact(RelId::new(1), [1u32, 2])
            .fact(RelId::new(1), [2u32, 3])
            .fact(RelId::new(1), [3u32, 1])
            .build()
            .unwrap(),
        DatabaseBuilder::new()
            .fact(RelId::new(1), [1u32, 2])
            .fact(RelId::new(1), [2u32, 3])
            .build()
            .unwrap(),
    ])
    .unwrap();
    let expr = Transform::insert(tc_sentence());

    let mut seen = Vec::new();
    for threads in [1usize, 4] {
        let t = Transformer::with_options(EvalOptions::with_threads(threads));
        let plain = t.apply(&expr, &kb).unwrap();
        let (prof, profiles) = t.apply_profiled(&expr, &kb, &namer).unwrap();
        assert!(plain.kb == prof.kb, "width {threads}: fixpoints diverge");
        assert_eq!(plain.stats, prof.stats, "width {threads}: stats diverge");
        let stripped: Vec<String> = profiles
            .iter()
            .map(|p| {
                format!(
                    "s{} {} rounds={} derived={} probes={} scanned={} :: {}",
                    p.stratum, p.rule, p.rounds, p.derived, p.probes, p.scanned, p.plan
                )
            })
            .collect();
        assert!(!stripped.is_empty());
        seen.push((plain.kb, plain.stats, stripped));
    }
    let (kb1, stats1, rows1) = &seen[0];
    let (kb4, stats4, rows4) = &seen[1];
    assert!(kb1 == kb4, "fixpoints diverge across widths");
    assert_eq!(stats1, stats4, "stats diverge across widths");
    assert_eq!(rows1, rows4, "profiles diverge across widths");
}

#[test]
fn explain_renders_the_section3_closure_golden() {
    let s = Service::new(ServiceConfig::builder().threads(1).build());
    s.execute("ASSERT edge(1, 2), edge(2, 3), edge(3, 1), edge(3, 4)")
        .unwrap();
    let r = s.execute(&format!("EXPLAIN {TC}; lub")).unwrap();
    let Response::Explain { epoch, rows } = r else {
        panic!("EXPLAIN must yield Response::Explain, got {r}");
    };
    assert_eq!(epoch.get(), 1);
    assert_eq!(
        rows,
        [
            "s0 path(x0, x1) :- edge(x0, x1). :: path(s0, s1) <- scan edge(s0, s1)",
            "s0 path(x0, x2) :- path(x0, x1), edge(x1, x2). :: \
             path(s0, s2) <- scan path(s0, s1); probe edge mask=0b01 key=(s1) \
             | dpath: scan path#delta(s0, s1); probe edge mask=0b01 key=(s1)",
            "s0 lub :: strategy: lattice (no rule plan)",
        ]
    );
}
